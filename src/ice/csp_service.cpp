#include "ice/csp_service.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"
#include "ice/batch.h"
#include "ice/wire.h"

namespace ice::proto {

using net::ServiceError;
using net::Status;

CspService::CspService(mec::BlockStore store, std::size_t parallelism)
    : dispatch_("CspService"), store_(std::move(store)) {
  params_.parallelism = parallelism;
  const auto bind = [this](void (CspService::*fn)(net::Reader&,
                                                  net::Writer&)) {
    return [this, fn](net::Reader& r, net::Writer& w) { (this->*fn)(r, w); };
  };
  dispatch_.on(kCspInfo, "info", bind(&CspService::on_info));
  dispatch_.on(kCspFetch, "fetch", bind(&CspService::on_fetch));
  dispatch_.on(kCspWriteBack, "write_back", bind(&CspService::on_write_back));
  dispatch_.on(kCspSetKey, "set_key", bind(&CspService::on_set_key));
  dispatch_.on(kCspChallenge, "challenge", bind(&CspService::on_challenge));
}

Bytes CspService::handle(std::uint16_t method, BytesView request) {
  return dispatch_.handle(method, request);
}

void CspService::on_info(net::Reader&, net::Writer& w) {
  std::shared_lock lock(mu_);
  w.varint(store_.size());
  w.varint(store_.block_size());
}

void CspService::on_fetch(net::Reader& r, net::Writer& w) {
  const auto index = static_cast<std::size_t>(r.varint());
  std::shared_lock lock(mu_);
  w.bytes(store_.block(index));
}

void CspService::on_write_back(net::Reader& r, net::Writer&) {
  // Decode fully before touching the store so a malformed tail cannot
  // leave a half-applied batch behind.
  std::vector<std::pair<std::size_t, Bytes>> blocks;
  const std::uint64_t count = r.varint();
  // Each entry costs >= 2 encoded bytes, so remaining() bounds any honest
  // count; a hostile prefix cannot force a giant up-front allocation.
  blocks.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining())));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto index = static_cast<std::size_t>(r.varint());
    blocks.emplace_back(index, r.bytes());
  }
  r.expect_done();
  std::unique_lock lock(mu_);
  for (auto& [index, data] : blocks) {
    store_.update_block(index, std::move(data));
  }
}

void CspService::on_set_key(net::Reader& r, net::Writer&) {
  PublicKey pk;
  pk.n = r.bigint();
  pk.g = r.bigint();
  const auto coeff_bits = static_cast<std::size_t>(r.varint());
  const auto key_bits = static_cast<std::size_t>(r.varint());
  if (!plausible_public_key(pk)) {
    throw ServiceError(Status::kInvalidArgument, "implausible public key");
  }
  std::unique_lock lock(mu_);
  params_.coeff_bits = coeff_bits;
  params_.challenge_key_bits = key_bits;
  params_.modulus_bits = pk.n.bit_length();
  pk_ = std::move(pk);
}

void CspService::on_challenge(net::Reader& r, net::Writer& w) {
  const bn::BigInt e = r.bigint();
  const bn::BigInt g_s = r.bigint();
  const std::vector<std::size_t> sample = read_index_list(r);
  PublicKey pk;
  ProtocolParams params;
  std::vector<Bytes> blocks;
  {
    std::shared_lock lock(mu_);
    if (!pk_) {
      throw ServiceError(Status::kFailedPrecondition, "set key first");
    }
    pk = *pk_;
    params = params_;
    blocks.reserve(sample.size());
    for (std::size_t index : sample) {
      blocks.push_back(store_.block(index));
    }
  }
  // Heavy proof computation runs with no lock held.
  const Proof proof = make_batch_proof(pk, params, blocks, e, g_s);
  w.bigint(proof.p);
}

CspClient::Info CspClient::info() const {
  const net::PooledBytes raw = net::call_pooled(*channel_, kCspInfo);
  net::Reader r = unwrap(raw);
  Info out;
  out.n = static_cast<std::size_t>(r.varint());
  out.block_size = static_cast<std::size_t>(r.varint());
  return out;
}

Bytes CspClient::fetch(std::size_t index) const {
  net::Writer w;
  w.varint(index);
  const net::PooledBytes raw = net::call_pooled(*channel_, kCspFetch, std::move(w));
  net::Reader r = unwrap(raw);
  return r.bytes();
}

void CspClient::write_back(
    const std::vector<std::pair<std::size_t, Bytes>>& blocks) const {
  net::Writer w;
  w.varint(blocks.size());
  for (const auto& [index, data] : blocks) {
    w.varint(index);
    w.bytes(data);
  }
  const net::PooledBytes raw = net::call_pooled(*channel_, kCspWriteBack, std::move(w));
  unwrap(raw);
}

void CspClient::set_key(const PublicKey& pk,
                        const ProtocolParams& params) const {
  net::Writer w;
  w.bigint(pk.n);
  w.bigint(pk.g);
  w.varint(params.coeff_bits);
  w.varint(params.challenge_key_bits);
  const net::PooledBytes raw = net::call_pooled(*channel_, kCspSetKey, std::move(w));
  unwrap(raw);
}

Proof CspClient::challenge(const bn::BigInt& e, const bn::BigInt& g_s,
                           const std::vector<std::size_t>& sample) const {
  net::Writer w;
  w.bigint(e);
  w.bigint(g_s);
  write_index_list(w, sample);
  const net::PooledBytes raw = net::call_pooled(*channel_, kCspChallenge, std::move(w));
  net::Reader r = unwrap(raw);
  Proof proof;
  proof.p = r.bigint();
  return proof;
}

}  // namespace ice::proto
