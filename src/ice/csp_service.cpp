#include "ice/csp_service.h"

#include "common/error.h"
#include "ice/batch.h"
#include "ice/wire.h"

namespace ice::proto {

Bytes CspService::handle(std::uint16_t method, BytesView request) {
  try {
    std::lock_guard lock(mu_);
    net::Reader r(request);
    switch (method) {
      case kCspInfo: {
        net::Writer w;
        w.varint(store_.size());
        w.varint(store_.block_size());
        return ok_response(std::move(w));
      }
      case kCspFetch: {
        const auto index = static_cast<std::size_t>(r.varint());
        r.expect_done();
        net::Writer w;
        w.bytes(store_.block(index));
        return ok_response(std::move(w));
      }
      case kCspWriteBack: {
        const std::uint64_t count = r.varint();
        for (std::uint64_t i = 0; i < count; ++i) {
          const auto index = static_cast<std::size_t>(r.varint());
          store_.update_block(index, r.bytes());
        }
        r.expect_done();
        return ok_empty();
      }
      case kCspSetKey: {
        PublicKey pk;
        pk.n = r.bigint();
        pk.g = r.bigint();
        params_.coeff_bits = static_cast<std::size_t>(r.varint());
        params_.challenge_key_bits = static_cast<std::size_t>(r.varint());
        r.expect_done();
        if (!plausible_public_key(pk)) {
          return error_response("CspService: implausible public key");
        }
        params_.modulus_bits = pk.n.bit_length();
        pk_ = std::move(pk);
        return ok_empty();
      }
      case kCspChallenge: {
        if (!pk_) return error_response("CspService: set key first");
        const bn::BigInt e = r.bigint();
        const bn::BigInt g_s = r.bigint();
        const std::vector<std::size_t> sample = read_index_list(r);
        r.expect_done();
        std::vector<Bytes> blocks;
        blocks.reserve(sample.size());
        for (std::size_t index : sample) {
          blocks.push_back(store_.block(index));
        }
        const Proof proof = make_batch_proof(*pk_, params_, blocks, e, g_s);
        net::Writer w;
        w.bigint(proof.p);
        return ok_response(std::move(w));
      }
      default:
        return error_response("CspService: unknown method");
    }
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

CspClient::Info CspClient::info() const {
  const Bytes raw = channel_->call(kCspInfo, {});
  net::Reader r = unwrap(raw);
  Info out;
  out.n = static_cast<std::size_t>(r.varint());
  out.block_size = static_cast<std::size_t>(r.varint());
  return out;
}

Bytes CspClient::fetch(std::size_t index) const {
  net::Writer w;
  w.varint(index);
  const Bytes raw = channel_->call(kCspFetch, w.take());
  net::Reader r = unwrap(raw);
  return r.bytes();
}

void CspClient::write_back(
    const std::vector<std::pair<std::size_t, Bytes>>& blocks) const {
  net::Writer w;
  w.varint(blocks.size());
  for (const auto& [index, data] : blocks) {
    w.varint(index);
    w.bytes(data);
  }
  const Bytes raw = channel_->call(kCspWriteBack, w.take());
  unwrap(raw);
}

void CspClient::set_key(const PublicKey& pk,
                        const ProtocolParams& params) const {
  net::Writer w;
  w.bigint(pk.n);
  w.bigint(pk.g);
  w.varint(params.coeff_bits);
  w.varint(params.challenge_key_bits);
  const Bytes raw = channel_->call(kCspSetKey, w.take());
  unwrap(raw);
}

Proof CspClient::challenge(const bn::BigInt& e, const bn::BigInt& g_s,
                           const std::vector<std::size_t>& sample) const {
  net::Writer w;
  w.bigint(e);
  w.bigint(g_s);
  write_index_list(w, sample);
  const Bytes raw = channel_->call(kCspChallenge, w.take());
  net::Reader r = unwrap(raw);
  Proof proof;
  proof.p = r.bigint();
  return proof;
}

}  // namespace ice::proto
