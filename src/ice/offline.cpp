#include "ice/offline.h"

#include <algorithm>

#include "common/parallel.h"
#include "crypto/prf.h"

namespace ice::proto {

ChallengeBundle make_bundle(const PublicKey& pk, const ProtocolParams& params,
                            bn::Rng64& rng, std::size_t coeff_count) {
  ChallengeBundle bundle;
  bundle.challenge = make_challenge(pk, params, rng, bundle.secret);
  if (coeff_count > 0) {
    bundle.coeffs = crypto::CoefficientPrf::expand(
        bundle.challenge.e, params.coeff_bits, coeff_count);
  }
  return bundle;
}

ChallengePool::ChallengePool(const OfflineConfig& config)
    : capacity_(std::max<std::size_t>(1, config.pool_capacity)),
      per_shard_((capacity_ + std::max<std::size_t>(1, config.pool_shards) -
                  1) /
                 std::max<std::size_t>(1, config.pool_shards)),
      coeff_count_(config.coeff_count) {
  const std::size_t shards =
      std::min(std::max<std::size_t>(1, config.pool_shards), capacity_);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint64_t ChallengePool::rekey(const PublicKey& pk,
                                   const ProtocolParams& params) {
  // Order matters: bump the generation FIRST so a producer that snapshotted
  // the old spec gets its subsequent offers refused, then drop the bundles
  // it already delivered, then publish the new spec.
  const std::uint64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->bundles.clear();
  }
  std::lock_guard lock(spec_mu_);
  spec_.emplace(pk, params);
  return gen;
}

void ChallengePool::invalidate() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->bundles.clear();
  }
  std::lock_guard lock(spec_mu_);
  spec_.reset();
}

std::optional<ChallengePool::MintSpec> ChallengePool::mint_spec() const {
  // Generation read before the spec: a producer minting against this spec
  // under a generation that has since moved is caught by offer().
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  std::lock_guard lock(spec_mu_);
  if (!spec_) return std::nullopt;
  MintSpec spec;
  spec.pk = spec_->first;
  spec.params = spec_->second;
  spec.coeff_count = coeff_count_;
  spec.generation = gen;
  return spec;
}

bool ChallengePool::try_acquire(ChallengeBundle& out) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  const std::size_t start =
      cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[(start + i) % shards_.size()];
    std::lock_guard lock(shard.mu);
    // Stored bundles are cleared on rekey, but a stale offer could in
    // principle land between the generation bump and the clear; the
    // per-bundle generation check makes "stale is never consumed" a local
    // invariant instead of a protocol-wide ordering argument.
    while (!shard.bundles.empty()) {
      if (shard.bundles.back().generation != gen) {
        shard.bundles.pop_back();
        continue;
      }
      out = std::move(shard.bundles.back());
      shard.bundles.pop_back();
      shard.acquires.record(true);
      return true;
    }
  }
  shards_[start]->acquires.record(false);
  return false;
}

bool ChallengePool::offer(ChallengeBundle&& bundle) {
  if (bundle.generation != generation_.load(std::memory_order_acquire)) {
    Shard& shard = *shards_[0];
    std::lock_guard lock(shard.mu);
    ++shard.stale_rejects;
    return false;
  }
  const std::size_t start =
      cursor_.load(std::memory_order_relaxed) % shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[(start + i) % shards_.size()];
    std::lock_guard lock(shard.mu);
    if (shard.bundles.size() >= per_shard_) continue;
    // Re-check under the shard lock: a rekey that ran between our check
    // above and this insert has already cleared this shard, and inserting
    // a stale bundle now would undo that.
    if (bundle.generation != generation_.load(std::memory_order_acquire)) {
      ++shard.stale_rejects;
      return false;
    }
    shard.bundles.push_back(std::move(bundle));
    ++shard.minted;
    return true;
  }
  Shard& shard = *shards_[start];
  std::lock_guard lock(shard.mu);
  ++shard.full_rejects;
  return false;
}

std::size_t ChallengePool::depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total += shard->bundles.size();
  }
  return total;
}

bool ChallengePool::full() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    if (shard->bundles.size() < per_shard_) return false;
  }
  return true;
}

OfflineStats ChallengePool::stats() const {
  OfflineStats out;
  out.capacity = capacity_;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.hits += shard->acquires.hits;
    out.misses += shard->acquires.misses;
    out.minted += shard->minted;
    out.stale_rejects += shard->stale_rejects;
    out.full_rejects += shard->full_rejects;
    out.depth += shard->bundles.size();
  }
  return out;
}

OfflineWorker::OfflineWorker(ChallengePool& pool, bn::Rng64& rng)
    : pool_(&pool), rng_(&rng) {}

OfflineWorker::~OfflineWorker() { stop(); }

void OfflineWorker::kick() {
  {
    std::lock_guard lock(mu_);
    if (stopped_ || task_active_) return;
    if (pool_->full()) return;
    task_active_ = true;
  }
  refills_.fetch_add(1, std::memory_order_relaxed);
  try {
    shared_pool().submit([this] { refill(); });
  } catch (...) {
    std::lock_guard lock(mu_);
    task_active_ = false;
    cv_.notify_all();
    throw;
  }
}

void OfflineWorker::stop() {
  cancel_.request_stop();
  std::unique_lock lock(mu_);
  stopped_ = true;
  cv_.wait(lock, [this] { return !task_active_; });
}

void OfflineWorker::refill() {
  // One bundle per iteration with the token checked between bundles:
  // stop() never waits longer than one mint, and a rekey mid-refill makes
  // the next mint_spec() snapshot pick up the new key while offer()
  // quietly drops the bundle minted against the old one.
  while (!cancel_.stop_requested()) {
    const auto spec = pool_->mint_spec();
    if (!spec || pool_->full()) break;
    ChallengeBundle bundle =
        make_bundle(spec->pk, spec->params, *rng_, spec->coeff_count);
    bundle.generation = spec->generation;
    (void)pool_->offer(std::move(bundle));
  }
  std::lock_guard lock(mu_);
  task_active_ = false;
  cv_.notify_all();
}

}  // namespace ice::proto
