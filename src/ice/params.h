// Protocol parameter sets for ICE.
//
// The paper's prototype uses |N| = 1024-bit RSA moduli, 1024-bit PRF keys
// and 256KB..1MB blocks. All of these are sweepable here; kPaper mirrors the
// paper, kTest shrinks the numbers so unit tests run in milliseconds without
// changing any code path.
#pragma once

#include <cstddef>

namespace ice::proto {

struct ProtocolParams {
  /// |N| in bits; also K, the per-tag bit width stored by the TPAs.
  std::size_t modulus_bits = 1024;
  /// d: bit length of each challenge coefficient a_k (paper Sec. III-A).
  std::size_t coeff_bits = 64;
  /// Bit length of the challenge key e (seeds the coefficient PRF).
  std::size_t challenge_key_bits = 128;
  /// Data block size in bytes (the paper sweeps 256KB..1024KB).
  std::size_t block_bytes = 256 * 1024;
  /// Worker-task budget for the parallel audit hot paths (proof
  /// aggregation, PIR bitplane evaluation, TPA multi-exponentiation):
  /// 0 = one task per hardware thread, 1 = the exact single-threaded legacy
  /// path, t = at most t chunks on the shared pool (common/parallel.h).
  /// A local deployment knob: it is never serialized onto the wire and
  /// never changes a protocol result bit (see tests/ice/parallel_diff_*).
  std::size_t parallelism = 0;
  /// Per-shard row budget for the TPA tag database: the tag space is
  /// partitioned into ceil(n / shard_budget) contiguous range shards, each
  /// with its own embedding and PIR evaluation state, and a tag query fans
  /// out only to the shards its indexes touch (pir/shard_map.h). 0 keeps
  /// the paper's monolithic single-shard layout. A deployment knob like
  /// `parallelism` — both TPAs of a pair must be configured identically
  /// (the shard-map epoch check turns drift into typed errors) — and it
  /// never changes a decoded tag bit (tests/ice/shard_audit_test.cpp).
  std::size_t shard_budget = 0;

  /// Parameters matching the paper's experimental setup.
  static constexpr ProtocolParams paper() { return ProtocolParams{}; }

  /// Shrunk parameters for fast tests: 256-bit modulus, 4KB blocks.
  static constexpr ProtocolParams test() {
    return ProtocolParams{.modulus_bits = 256,
                          .coeff_bits = 64,
                          .challenge_key_bits = 128,
                          .block_bytes = 4 * 1024};
  }

  /// K, the tag width in bits (alias making call sites self-documenting).
  [[nodiscard]] constexpr std::size_t tag_bits() const {
    return modulus_bits;
  }
};

}  // namespace ice::proto
