// Durable on-disk state.
//
// The user device must keep its key pair across sessions (losing sk makes
// every stored tag unverifiable), and a TPA must survive restarts without
// re-uploading the tag set. Format: magic + version + payload +
// SHA-256 trailer; any bit rot or truncation is detected at load time and
// reported as CodecError rather than silently yielding wrong keys.
#pragma once

#include <filesystem>
#include <vector>

#include "bignum/bigint.h"
#include "ice/keys.h"

namespace ice::proto {

/// Writes the key pair (INCLUDING the secret key) to `path`. The caller is
/// responsible for the file's access permissions.
void save_keypair(const std::filesystem::path& path, const KeyPair& keys);

/// Loads a key pair; throws CodecError on any corruption or version
/// mismatch, ParamError if the recovered key is implausible.
KeyPair load_keypair(const std::filesystem::path& path);

/// Writes a tag set with its bit width.
void save_tags(const std::filesystem::path& path,
               const std::vector<bn::BigInt>& tags, std::size_t tag_bits);

struct StoredTags {
  std::vector<bn::BigInt> tags;
  std::size_t tag_bits = 0;
};

/// Loads a tag set; throws CodecError on corruption.
StoredTags load_tags(const std::filesystem::path& path);

}  // namespace ice::proto
