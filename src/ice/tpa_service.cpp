#include "ice/tpa_service.h"

#include "common/error.h"
#include "ice/edge_service.h"
#include "ice/wire.h"

namespace ice::proto {

// An abandoned audit (user never submits repacked tags) would otherwise
// leak a session entry forever; cap the table so a hostile user cannot
// exhaust TPA memory.
constexpr std::size_t kMaxOpenSessions = 4096;

TpaService::TpaService(pir::EvalStrategy strategy, std::size_t parallelism)
    : strategy_(strategy) {
  params_.parallelism = parallelism;
}

void TpaService::register_edge(std::uint32_t edge_id,
                               net::RpcChannel& channel) {
  std::lock_guard lock(mu_);
  edges_[edge_id] = &channel;
}

Bytes TpaService::handle(std::uint16_t method, BytesView request) {
  try {
    // Holding the lock across the kEdgeChallenge round trip is safe
    // because the TPA->edge order is the only cross-service lock order:
    // the edge submits its batch proofs to us only AFTER releasing its own
    // lock (EdgeService::handle's deferred call), so the edge->TPA edge of
    // the lock graph never exists.
    std::lock_guard lock(mu_);
    net::Reader r(request);
    return handle_locked(method, r);
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

Bytes TpaService::handle_locked(std::uint16_t method, net::Reader& r) {
  switch (method) {
    case kTpaSetKey: {
      PublicKey pk;
      pk.n = r.bigint();
      pk.g = r.bigint();
      params_.coeff_bits = static_cast<std::size_t>(r.varint());
      params_.challenge_key_bits = static_cast<std::size_t>(r.varint());
      r.expect_done();
      if (!plausible_public_key(pk)) {
        return error_response("TpaService: implausible public key");
      }
      params_.modulus_bits = pk.n.bit_length();
      pk_ = std::move(pk);
      store_.reset();  // tags from an old key are meaningless now
      return ok_empty();
    }
    case kTpaStoreTags: {
      if (!pk_) return error_response("TpaService: set key first");
      std::vector<bn::BigInt> tags = read_bigint_list(r);
      r.expect_done();
      if (tags.empty()) return error_response("TpaService: no tags");
      store_.emplace(params_, std::move(tags), strategy_);
      store_->preprocess();
      return ok_empty();
    }
    case kTpaTagQuery: {
      if (!store_) return error_response("TpaService: no tags stored");
      const pir::PirQuery query = read_pir_query(r);
      r.expect_done();
      net::Writer w;
      write_pir_response(w, store_->respond(query));
      return ok_response(std::move(w));
    }
    case kTpaStartAudit: {
      if (!pk_) return error_response("TpaService: set key first");
      const auto edge_id = static_cast<std::uint32_t>(r.varint());
      // Session id is a user-chosen nonce: the user already shared the
      // blinding s~ with the edge under this id, and the edge looks it up
      // when our challenge arrives.
      const std::uint64_t id = r.u64();
      r.expect_done();
      const auto it = edges_.find(edge_id);
      if (it == edges_.end()) {
        return error_response("TpaService: unknown edge");
      }
      if (sessions_.contains(id)) {
        return error_response("TpaService: session id already in use");
      }
      if (sessions_.size() >= kMaxOpenSessions) {
        return error_response("TpaService: too many open sessions");
      }
      AuditSession session;
      session.edge_id = edge_id;
      session.challenge =
          make_challenge(*pk_, params_, rng_, session.secret);
      session.proof = EdgeClient(*it->second).challenge(id,
                                                        session.challenge);
      // Reject malformed proof values at the wire boundary: an honest edge
      // always returns an element of Z_N^*, so anything else is a protocol
      // violation, not a failed audit.
      validate_proof(*pk_, session.proof);
      sessions_[id] = std::move(session);
      return ok_empty();
    }
    case kTpaSubmitRepacked: {
      const std::uint64_t id = r.u64();
      const std::vector<bn::BigInt> tags = read_bigint_list(r);
      r.expect_done();
      const auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        return error_response("TpaService: unknown session");
      }
      const AuditSession session = std::move(it->second);
      sessions_.erase(it);
      const bool pass = verify_proof(*pk_, params_, tags, session.challenge,
                                     session.secret, session.proof);
      log_.append(id, session.edge_id, /*batch=*/false, pass);
      net::Writer w;
      w.u8(pass ? 1 : 0);
      return ok_response(std::move(w));
    }
    case kTpaBatchBegin: {
      if (!pk_) return error_response("TpaService: set key first");
      const auto num_edges = static_cast<std::size_t>(r.varint());
      r.expect_done();
      if (num_edges == 0) return error_response("TpaService: empty batch");
      if (batches_.size() >= kMaxOpenSessions) {
        return error_response("TpaService: too many open batches");
      }
      BatchSession batch;
      const Challenge base = make_batch_base(*pk_, rng_, batch.secret);
      batch.expected_proofs = num_edges;
      const std::uint64_t id = next_id_++;
      batches_[id] = std::move(batch);
      net::Writer w;
      w.u64(id);
      w.bigint(base.g_s);
      return ok_response(std::move(w));
    }
    case kTpaSubmitProof: {
      if (!pk_) return error_response("TpaService: set key first");
      const std::uint64_t id = r.u64();
      Proof proof;
      proof.p = r.bigint();
      r.expect_done();
      validate_proof(*pk_, proof);  // range/unit check at deserialization
      const auto it = batches_.find(id);
      if (it == batches_.end()) {
        return error_response("TpaService: unknown batch");
      }
      if (it->second.proofs.size() >= it->second.expected_proofs) {
        return error_response("TpaService: batch already full");
      }
      it->second.proofs.push_back(std::move(proof));
      return ok_empty();
    }
    case kTpaBatchFinish: {
      const std::uint64_t id = r.u64();
      const std::vector<bn::BigInt> tags = read_bigint_list(r);
      r.expect_done();
      const auto it = batches_.find(id);
      if (it == batches_.end()) {
        return error_response("TpaService: unknown batch");
      }
      if (it->second.proofs.size() != it->second.expected_proofs) {
        return error_response("TpaService: batch proofs incomplete");
      }
      const BatchSession batch = std::move(it->second);
      batches_.erase(it);
      const bool pass = verify_batch(*pk_, tags, batch.proofs, batch.secret,
                                     params_.parallelism);
      log_.append(id, /*edge_id=*/0, /*batch=*/true, pass);
      net::Writer w;
      w.u8(pass ? 1 : 0);
      return ok_response(std::move(w));
    }
    case kTpaUpdateTag: {
      if (!store_) return error_response("TpaService: no tags stored");
      const auto index = static_cast<std::size_t>(r.varint());
      const bn::BigInt tag = r.bigint();
      r.expect_done();
      if (index >= store_->n()) {
        return error_response("TpaService: tag index out of range");
      }
      store_->update(index, tag);
      return ok_empty();
    }
    default:
      return error_response("TpaService: unknown method");
  }
}

void TpaClient::set_key(const PublicKey& pk,
                        const ProtocolParams& params) const {
  net::Writer w;
  w.bigint(pk.n);
  w.bigint(pk.g);
  w.varint(params.coeff_bits);
  w.varint(params.challenge_key_bits);
  const Bytes raw = channel_->call(kTpaSetKey, w.take());
  unwrap(raw);
}

void TpaClient::store_tags(const std::vector<bn::BigInt>& tags) const {
  net::Writer w;
  write_bigint_list(w, tags);
  const Bytes raw = channel_->call(kTpaStoreTags, w.take());
  unwrap(raw);
}

pir::PirResponse TpaClient::tag_query(const pir::PirQuery& query) const {
  net::Writer w;
  write_pir_query(w, query);
  const Bytes raw = channel_->call(kTpaTagQuery, w.take());
  net::Reader r = unwrap(raw);
  return read_pir_response(r);
}

void TpaClient::start_audit(std::uint32_t edge_id,
                            std::uint64_t session_id) const {
  net::Writer w;
  w.varint(edge_id);
  w.u64(session_id);
  const Bytes raw = channel_->call(kTpaStartAudit, w.take());
  unwrap(raw);
}

bool TpaClient::submit_repacked(std::uint64_t session_id,
                                const std::vector<bn::BigInt>& tags) const {
  net::Writer w;
  w.u64(session_id);
  write_bigint_list(w, tags);
  const Bytes raw = channel_->call(kTpaSubmitRepacked, w.take());
  net::Reader r = unwrap(raw);
  return r.u8() == 1;
}

std::pair<std::uint64_t, bn::BigInt> TpaClient::batch_begin(
    std::size_t num_edges) const {
  net::Writer w;
  w.varint(num_edges);
  const Bytes raw = channel_->call(kTpaBatchBegin, w.take());
  net::Reader r = unwrap(raw);
  const std::uint64_t id = r.u64();
  return {id, r.bigint()};
}

void TpaClient::update_tag(std::size_t index, const bn::BigInt& tag) const {
  net::Writer w;
  w.varint(index);
  w.bigint(tag);
  const Bytes raw = channel_->call(kTpaUpdateTag, w.take());
  unwrap(raw);
}

bool TpaClient::batch_finish(std::uint64_t batch_id,
                             const std::vector<bn::BigInt>& tags) const {
  net::Writer w;
  w.u64(batch_id);
  write_bigint_list(w, tags);
  const Bytes raw = channel_->call(kTpaBatchFinish, w.take());
  net::Reader r = unwrap(raw);
  return r.u8() == 1;
}

}  // namespace ice::proto
