#include "ice/tpa_service.h"

#include "bignum/fixed_base.h"
#include "bignum/montgomery.h"
#include "common/error.h"
#include "ice/edge_service.h"
#include "ice/wire.h"

namespace ice::proto {

using net::ServiceError;
using net::Status;

TpaService::TpaService(pir::EvalStrategy strategy, std::size_t parallelism,
                       std::size_t shard_budget, const OfflineConfig& offline)
    : strategy_(strategy),
      dispatch_("TpaService"),
      sessions_(session_table_config()),
      batches_(session_table_config()),
      offline_cfg_(offline),
      pool_(offline) {
  params_.parallelism = parallelism;
  params_.shard_budget = shard_budget;
  if (offline_cfg_.enabled) {
    offline_worker_ = std::make_unique<OfflineWorker>(pool_, rng_);
  }
  const auto bind = [this](void (TpaService::*fn)(net::Reader&,
                                                  net::Writer&)) {
    return [this, fn](net::Reader& r, net::Writer& w) { (this->*fn)(r, w); };
  };
  dispatch_.on(kTpaSetKey, "set_key", bind(&TpaService::on_set_key));
  dispatch_.on(kTpaStoreTags, "store_tags", bind(&TpaService::on_store_tags));
  dispatch_.on(kTpaTagQuery, "tag_query", bind(&TpaService::on_tag_query));
  dispatch_.on(kTpaStartAudit, "start_audit",
               bind(&TpaService::on_start_audit));
  dispatch_.on(kTpaSubmitRepacked, "submit_repacked",
               bind(&TpaService::on_submit_repacked));
  dispatch_.on(kTpaBatchBegin, "batch_begin",
               bind(&TpaService::on_batch_begin));
  dispatch_.on(kTpaSubmitProof, "submit_proof",
               bind(&TpaService::on_submit_proof));
  dispatch_.on(kTpaBatchFinish, "batch_finish",
               bind(&TpaService::on_batch_finish));
  dispatch_.on(kTpaUpdateTag, "update_tag",
               bind(&TpaService::on_update_tag));
  dispatch_.on(kTpaShardMap, "shard_map", bind(&TpaService::on_shard_map));
  dispatch_.on(kTpaShardQuery, "shard_query",
               bind(&TpaService::on_shard_query));
  dispatch_.on(kTpaSplitShard, "split_shard",
               bind(&TpaService::on_split_shard));
  dispatch_.on(kTpaAppendTag, "append_tag",
               bind(&TpaService::on_append_tag));
  dispatch_.on(kTpaCloseEpoch, "close_epoch",
               bind(&TpaService::on_close_epoch));
}

Bytes TpaService::handle(std::uint16_t method, BytesView request) {
  return dispatch_.handle(method, request);
}

void TpaService::register_edge(std::uint32_t edge_id,
                               net::RpcChannel& channel) {
  std::unique_lock lock(config_mu_);
  edges_[edge_id] = &channel;
}

bool TpaService::has_tags() const {
  std::shared_lock lock(store_mu_);
  return store_ != nullptr;
}

StoreEpochStats TpaService::epoch_stats() const {
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) return {};
  return store_->epoch_stats();
}

std::pair<PublicKey, ProtocolParams> TpaService::config_snapshot() const {
  std::shared_lock lock(config_mu_);
  if (!pk_) {
    throw ServiceError(Status::kFailedPrecondition, "set key first");
  }
  return {*pk_, params_};
}

void TpaService::on_set_key(net::Reader& r, net::Writer&) {
  PublicKey pk;
  pk.n = r.bigint();
  pk.g = r.bigint();
  const auto coeff_bits = static_cast<std::size_t>(r.varint());
  const auto key_bits = static_cast<std::size_t>(r.varint());
  if (!plausible_public_key(pk)) {
    throw ServiceError(Status::kInvalidArgument, "implausible public key");
  }
  ProtocolParams params;
  {
    std::unique_lock lock(config_mu_);
    params_.coeff_bits = coeff_bits;
    params_.challenge_key_bits = key_bits;
    params_.modulus_bits = pk.n.bit_length();
    params = params_;
    pk_ = pk;
  }
  {
    std::unique_lock lock(store_mu_);
    store_.reset();  // tags from an old key are meaningless now
  }
  // So are sessions challenged under the old key.
  sessions_.clear();
  batches_.clear();
  // Eager comb warm-up: with a fresh modulus, the first challenge would
  // otherwise pay the whole Lim-Lee table build for g on its critical path
  // (tests/bignum/fixed_base_test.cpp pins the cliff). Keys change rarely;
  // pay it here, off every audit path.
  bn::FixedBase::warm(*bn::Montgomery::shared(pk.n), pk.g, pk.n.bit_length());
  if (offline_cfg_.enabled) {
    // New key ⇒ new pool generation: stored bundles drop, in-flight mints
    // against the old key become stale offers the pool refuses.
    pool_.rekey(pk, params);
    offline_worker_->kick();
  }
}

void TpaService::on_store_tags(net::Reader& r, net::Writer&) {
  std::vector<bn::BigInt> tags = read_bigint_list(r);
  if (tags.empty()) {
    throw ServiceError(Status::kInvalidArgument, "no tags");
  }
  const auto [pk, params] = config_snapshot();
  (void)pk;
  // Build and preprocess the replacement store with no lock held (this is
  // the expensive part), then swap it in.
  auto store = std::make_unique<TagStore>(params, std::move(tags), strategy_);
  store->preprocess();
  std::unique_lock lock(store_mu_);
  store_ = std::move(store);
}

void TpaService::on_tag_query(net::Reader& r, net::Writer& w) {
  const pir::PirQuery query = read_pir_query(r);
  // Concurrent queries share the store under the shared lock; respond() is
  // const and safe after preprocess().
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition, "no tags stored");
  }
  write_pir_response(w, store_->respond(query));
}

void TpaService::on_start_audit(net::Reader& r, net::Writer&) {
  const auto edge_id = static_cast<std::uint32_t>(r.varint());
  // Session id is a user-chosen nonce: the user already shared the
  // blinding s~ with the edge under this id, and the edge looks it up
  // when our challenge arrives.
  const std::uint64_t id = r.u64();
  r.expect_done();
  PublicKey pk;
  ProtocolParams params;
  net::RpcChannel* edge_channel = nullptr;
  {
    std::shared_lock lock(config_mu_);
    if (!pk_) {
      throw ServiceError(Status::kFailedPrecondition, "set key first");
    }
    const auto it = edges_.find(edge_id);
    if (it == edges_.end()) {
      throw ServiceError(Status::kNotFound, "unknown edge");
    }
    pk = *pk_;
    params = params_;
    edge_channel = it->second;
  }

  AuditSession session;
  session.edge_id = edge_id;
  // Online/offline split: a pooled bundle turns the challenge phase into a
  // dequeue (the g^s modexp, RNG draws and coefficient expansion already
  // happened offline). The cold path below is the pinned reference and the
  // pool-miss fallback — bit-identical verdict either way.
  bool pooled = false;
  if (offline_cfg_.enabled) {
    ChallengeBundle bundle;
    if (pool_.try_acquire(bundle)) {
      session.challenge = std::move(bundle.challenge);
      session.secret = std::move(bundle.secret);
      session.coeffs = std::move(bundle.coeffs);
      pooled = true;
    }
    offline_worker_->kick();  // refill behind this consume (or miss)
  }
  if (!pooled) {
    session.challenge = make_challenge(pk, params, rng_, session.secret);
  }
  {
    // Pin the epoch snapshot for the session's lifetime (DESIGN.md §15):
    // a non-forced close_epoch defers while this audit is in flight. The
    // pin dies with the session — consumed, aborted or TTL-purged.
    std::shared_lock store_lock(store_mu_);
    if (store_ != nullptr) session.store_pin = store_->pin();
  }
  const Challenge challenge = session.challenge;
  // Park the session in kChallenging state BEFORE the round trip so a
  // concurrent start_audit on the same nonce is refused, then challenge
  // the edge with no lock of ours held.
  switch (sessions_.try_emplace(id, std::move(session))) {
    case SessionTable<AuditSession>::Insert::kExists:
      throw ServiceError(Status::kAlreadyExists, "session id already in use");
    case SessionTable<AuditSession>::Insert::kFull:
      throw ServiceError(Status::kResourceExhausted,
                         "too many open sessions");
    case SessionTable<AuditSession>::Insert::kInserted:
      break;
  }
  Proof proof;
  try {
    proof = EdgeClient(*edge_channel).challenge(id, challenge);
    // Reject malformed proof values at the wire boundary: an honest edge
    // always returns an element of Z_N^*, so anything else is a protocol
    // violation, not a failed audit.
    validate_proof(pk, proof);
  } catch (...) {
    sessions_.erase(id);
    throw;
  }
  const bool parked = sessions_.with(id, [&](AuditSession& s) {
    s.proof = std::move(proof);
    s.state = AuditSession::State::kAwaitingTags;
  });
  if (!parked) {
    throw ServiceError(Status::kNotFound,
                       "session expired during the edge challenge");
  }
}

void TpaService::on_submit_repacked(net::Reader& r, net::Writer& w) {
  const std::uint64_t id = r.u64();
  const std::vector<bn::BigInt> tags = read_bigint_list(r);
  r.expect_done();
  const auto [pk, params] = config_snapshot();
  auto [outcome, session] =
      sessions_.extract_if(id, [](const AuditSession& s) {
        return s.state == AuditSession::State::kAwaitingTags;
      });
  if (outcome == SessionTable<AuditSession>::Extract::kMissing) {
    throw ServiceError(Status::kNotFound, "unknown session");
  }
  if (outcome == SessionTable<AuditSession>::Extract::kRejected) {
    throw ServiceError(Status::kFailedPrecondition,
                       "edge challenge still in flight");
  }
  bool pass;
  if (session->coeffs.size() >= tags.size()) {
    // Pool-served session with enough pre-expanded coefficients: slice the
    // prefix (the PRF stream is sequential, so it is the exact cold-path
    // vector) and skip the online expansion.
    session->coeffs.resize(tags.size());
    pass = verify_proof_precomputed(pk, params, tags, session->coeffs,
                                    session->secret, session->proof);
  } else {
    pass = verify_proof(pk, params, tags, session->challenge, session->secret,
                        session->proof);
  }
  {
    std::lock_guard lock(log_mu_);
    log_.append(id, session->edge_id, /*batch=*/false, pass);
  }
  w.u8(pass ? 1 : 0);
}

void TpaService::on_batch_begin(net::Reader& r, net::Writer& w) {
  // Batch id is a user-chosen nonce, mirroring start_audit: the user
  // quotes it to every edge it challenges, and each edge quotes it back
  // when submitting its proof.
  const std::uint64_t id = r.u64();
  const auto num_edges = static_cast<std::size_t>(r.varint());
  if (num_edges == 0) {
    throw ServiceError(Status::kInvalidArgument, "empty batch");
  }
  const auto [pk, params] = config_snapshot();
  (void)params;
  BatchSession batch;
  Challenge base;
  // ICE-batch only needs (s, g^s) from the TPA — the per-edge challenge
  // keys are the user's (paper §V) — so a pooled bundle serves here too;
  // its pre-expanded coefficients go unused, but the g^s modexp dominates
  // the mint, so the online saving is nearly the full bundle.
  bool pooled = false;
  if (offline_cfg_.enabled) {
    ChallengeBundle bundle;
    if (pool_.try_acquire(bundle)) {
      base.g_s = std::move(bundle.challenge.g_s);
      batch.secret = std::move(bundle.secret);
      pooled = true;
    }
    offline_worker_->kick();
  }
  if (!pooled) base = make_batch_base(pk, rng_, batch.secret);
  batch.expected_proofs = num_edges;
  {
    // Same snapshot pin as start_audit, held for the whole batch round.
    std::shared_lock store_lock(store_mu_);
    if (store_ != nullptr) batch.store_pin = store_->pin();
  }
  switch (batches_.try_emplace(id, std::move(batch))) {
    case SessionTable<BatchSession>::Insert::kExists:
      throw ServiceError(Status::kAlreadyExists, "batch id already in use");
    case SessionTable<BatchSession>::Insert::kFull:
      throw ServiceError(Status::kResourceExhausted, "too many open batches");
    case SessionTable<BatchSession>::Insert::kInserted:
      break;
  }
  w.bigint(base.g_s);
}

void TpaService::on_submit_proof(net::Reader& r, net::Writer&) {
  const std::uint64_t id = r.u64();
  Proof proof;
  proof.p = r.bigint();
  r.expect_done();
  const auto [pk, params] = config_snapshot();
  (void)params;
  validate_proof(pk, proof);  // range/unit check at deserialization
  bool full = false;
  const bool found = batches_.with(id, [&](BatchSession& batch) {
    if (batch.proofs.size() >= batch.expected_proofs) {
      full = true;
      return;
    }
    batch.proofs.push_back(std::move(proof));
  });
  if (!found) throw ServiceError(Status::kNotFound, "unknown batch");
  if (full) {
    throw ServiceError(Status::kFailedPrecondition, "batch already full");
  }
}

void TpaService::on_batch_finish(net::Reader& r, net::Writer& w) {
  const std::uint64_t id = r.u64();
  const std::vector<bn::BigInt> tags = read_bigint_list(r);
  r.expect_done();
  const auto [pk, params] = config_snapshot();
  auto [outcome, batch] = batches_.extract_if(
      id, [](const BatchSession& b) { return b.complete(); });
  if (outcome == SessionTable<BatchSession>::Extract::kMissing) {
    throw ServiceError(Status::kNotFound, "unknown batch");
  }
  if (outcome == SessionTable<BatchSession>::Extract::kRejected) {
    throw ServiceError(Status::kFailedPrecondition,
                       "batch proofs incomplete");
  }
  const bool pass = verify_batch(pk, tags, batch->proofs, batch->secret,
                                 params.parallelism);
  {
    std::lock_guard lock(log_mu_);
    log_.append(id, /*edge_id=*/0, /*batch=*/true, pass);
  }
  w.u8(pass ? 1 : 0);
}

void TpaService::on_update_tag(net::Reader& r, net::Writer& w) {
  const auto index = static_cast<std::size_t>(r.varint());
  const bn::BigInt tag = r.bigint();
  r.expect_done();
  // SHARED service lock: the store pointer stays put, and TagStore::update
  // only stages into the delta plane — an update storm rides alongside
  // in-flight audits (snapshot isolation, DESIGN.md §15).
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition, "no tags stored");
  }
  // Typed kInvalidArgument envelopes for hostile wire input: a caller must
  // never be able to turn a bad index or oversized tag into anything but a
  // clean refusal (ISSUE 9 hardening satellite).
  if (index >= store_->n()) {
    throw ServiceError(Status::kInvalidArgument, "tag index out of range");
  }
  if (tag.is_negative() || tag.bit_length() > store_->tag_bits()) {
    throw ServiceError(Status::kInvalidArgument, "tag out of range for K bits");
  }
  store_->update(index, tag);
  w.u64(store_->epoch());  // the epoch the update was staged under
}

void TpaService::on_shard_map(net::Reader& r, net::Writer& w) {
  r.expect_done();
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition, "no tags stored");
  }
  write_shard_map(w, store_->shard_map());
}

void TpaService::on_shard_query(net::Reader& r, net::Writer& w) {
  const pir::ShardedPirQuery query = read_sharded_query(r);
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition, "no tags stored");
  }
  // A stale query epoch throws pir::StaleShardMapError (a ProtocolError),
  // which the dispatcher maps to kFailedPrecondition for the client's
  // refresh-and-retry path.
  pir::ShardedPirResponse out;
  store_->respond_sharded(query, out);
  write_sharded_response(w, out);
}

void TpaService::on_split_shard(net::Reader& r, net::Writer& w) {
  const auto shard = static_cast<std::size_t>(r.varint());
  r.expect_done();
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition, "no tags stored");
  }
  // Explicit typed refusal before the store throws ParamError deeper down:
  // a hostile shard id is a caller bug, not a service precondition.
  if (shard >= store_->num_shards()) {
    throw ServiceError(Status::kInvalidArgument, "shard id out of range");
  }
  store_->split(shard);  // takes the store's structure lock exclusively
  w.u64(store_->epoch());
}

void TpaService::on_append_tag(net::Reader& r, net::Writer& w) {
  const bn::BigInt tag = r.bigint();
  r.expect_done();
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition, "no tags stored");
  }
  if (tag.is_negative() || tag.bit_length() > store_->tag_bits()) {
    throw ServiceError(Status::kInvalidArgument, "tag out of range for K bits");
  }
  const std::size_t index = store_->append(tag);
  w.varint(index);
  w.u64(store_->epoch());
}

void TpaService::on_close_epoch(net::Reader& r, net::Writer& w) {
  const bool force = r.u8() != 0;
  r.expect_done();
  std::shared_lock lock(store_mu_);
  if (store_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition, "no tags stored");
  }
  const pir::EpochCloseResult result = store_->close_epoch(force);
  w.u8(result.closed ? 1 : 0);
  w.u64(result.epoch);
  w.varint(result.rows_merged);
}

void TpaClient::set_key(const PublicKey& pk,
                        const ProtocolParams& params) const {
  net::Writer w;
  w.bigint(pk.n);
  w.bigint(pk.g);
  w.varint(params.coeff_bits);
  w.varint(params.challenge_key_bits);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaSetKey, std::move(w));
  unwrap(raw);
}

void TpaClient::store_tags(const std::vector<bn::BigInt>& tags) const {
  net::Writer w;
  write_bigint_list(w, tags);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaStoreTags, std::move(w));
  unwrap(raw);
}

pir::PirResponse TpaClient::tag_query(const pir::PirQuery& query) const {
  net::Writer w;
  write_pir_query(w, query);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaTagQuery, std::move(w));
  net::Reader r = unwrap(raw);
  return read_pir_response(r);
}

void TpaClient::start_audit(std::uint32_t edge_id,
                            std::uint64_t session_id) const {
  net::Writer w;
  w.varint(edge_id);
  w.u64(session_id);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaStartAudit, std::move(w));
  unwrap(raw);
}

bool TpaClient::submit_repacked(std::uint64_t session_id,
                                const std::vector<bn::BigInt>& tags) const {
  net::Writer w;
  w.u64(session_id);
  write_bigint_list(w, tags);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaSubmitRepacked, std::move(w));
  net::Reader r = unwrap(raw);
  return r.u8() == 1;
}

bn::BigInt TpaClient::batch_begin(std::uint64_t batch_id,
                                  std::size_t num_edges) const {
  net::Writer w;
  w.u64(batch_id);
  w.varint(num_edges);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaBatchBegin, std::move(w));
  net::Reader r = unwrap(raw);
  return r.bigint();
}

std::uint64_t TpaClient::update_tag(std::size_t index,
                                    const bn::BigInt& tag) const {
  net::Writer w;
  w.varint(index);
  w.bigint(tag);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaUpdateTag, std::move(w));
  net::Reader r = unwrap(raw);
  return r.u64();
}

TpaClient::CloseEpochReply TpaClient::close_epoch(bool force) const {
  net::Writer w;
  w.u8(force ? 1 : 0);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaCloseEpoch, std::move(w));
  net::Reader r = unwrap(raw);
  CloseEpochReply reply;
  reply.closed = r.u8() == 1;
  reply.epoch = r.u64();
  reply.rows_merged = r.varint();
  return reply;
}

pir::ShardMap TpaClient::shard_map() const {
  net::Writer w;
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaShardMap, std::move(w));
  net::Reader r = unwrap(raw);
  return read_shard_map(r);
}

pir::ShardedPirResponse TpaClient::shard_query(
    const pir::ShardedPirQuery& query) const {
  net::Writer w;
  write_sharded_query(w, query);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaShardQuery, std::move(w));
  net::Reader r = unwrap(raw);
  return read_sharded_response(r);
}

std::uint64_t TpaClient::split_shard(std::size_t shard) const {
  net::Writer w;
  w.varint(shard);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaSplitShard, std::move(w));
  net::Reader r = unwrap(raw);
  return r.u64();
}

std::pair<std::size_t, std::uint64_t> TpaClient::append_tag(
    const bn::BigInt& tag) const {
  net::Writer w;
  w.bigint(tag);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaAppendTag, std::move(w));
  net::Reader r = unwrap(raw);
  const auto index = static_cast<std::size_t>(r.varint());
  const std::uint64_t epoch = r.u64();
  return {index, epoch};
}

bool TpaClient::batch_finish(std::uint64_t batch_id,
                             const std::vector<bn::BigInt>& tags) const {
  net::Writer w;
  w.u64(batch_id);
  write_bigint_list(w, tags);
  const net::PooledBytes raw = net::call_pooled(*channel_, kTpaBatchFinish, std::move(w));
  net::Reader r = unwrap(raw);
  return r.u8() == 1;
}

}  // namespace ice::proto
