#include "ice/persist.h"

#include <fstream>

#include "common/error.h"
#include "crypto/sha256.h"
#include "ice/wire.h"
#include "net/serde.h"

namespace ice::proto {

namespace {

constexpr std::uint32_t kKeyMagic = 0x49434b31;   // "ICK1"
constexpr std::uint32_t kTagMagic = 0x49435431;   // "ICT1"
constexpr std::uint16_t kVersion = 1;

void write_file(const std::filesystem::path& path, std::uint32_t magic,
                net::Writer&& payload) {
  net::Writer w;
  w.u32(magic);
  w.u16(kVersion);
  const Bytes body = payload.take();
  w.bytes(body);
  Bytes out = w.take();
  const Bytes digest = crypto::sha256(out);
  out.insert(out.end(), digest.begin(), digest.end());

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw TransportError("persist: cannot open " + path.string() +
                         " for writing");
  }
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file) {
    throw TransportError("persist: short write to " + path.string());
  }
}

Bytes read_checked(const std::filesystem::path& path, std::uint32_t magic) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) {
    throw TransportError("persist: cannot open " + path.string());
  }
  const auto size = static_cast<std::size_t>(file.tellg());
  if (size < 4 + 2 + crypto::Sha256::kDigestSize) {
    throw CodecError("persist: file too short");
  }
  Bytes raw(size);
  file.seekg(0);
  file.read(reinterpret_cast<char*>(raw.data()),
            static_cast<std::streamsize>(size));
  if (!file) throw TransportError("persist: short read");

  const std::size_t body_len = size - crypto::Sha256::kDigestSize;
  const BytesView body(raw.data(), body_len);
  const BytesView trailer(raw.data() + body_len, crypto::Sha256::kDigestSize);
  if (!ct_equal(crypto::sha256(body), trailer)) {
    throw CodecError("persist: checksum mismatch (file corrupted)");
  }
  net::Reader r(body);
  if (r.u32() != magic) throw CodecError("persist: wrong file type");
  if (r.u16() != kVersion) throw CodecError("persist: unsupported version");
  return r.bytes();
}

}  // namespace

void save_keypair(const std::filesystem::path& path, const KeyPair& keys) {
  net::Writer w;
  w.bigint(keys.pk.n);
  w.bigint(keys.pk.g);
  w.bigint(keys.sk.p);
  w.bigint(keys.sk.q);
  write_file(path, kKeyMagic, std::move(w));
}

KeyPair load_keypair(const std::filesystem::path& path) {
  const Bytes payload = read_checked(path, kKeyMagic);
  net::Reader r(payload);
  KeyPair keys;
  keys.pk.n = r.bigint();
  keys.pk.g = r.bigint();
  keys.sk.p = r.bigint();
  keys.sk.q = r.bigint();
  r.expect_done();
  if (!plausible_public_key(keys.pk) ||
      keys.sk.p * keys.sk.q != keys.pk.n) {
    throw ParamError("persist: loaded key pair is inconsistent");
  }
  return keys;
}

void save_tags(const std::filesystem::path& path,
               const std::vector<bn::BigInt>& tags, std::size_t tag_bits) {
  net::Writer w;
  w.varint(tag_bits);
  write_bigint_list(w, tags);
  write_file(path, kTagMagic, std::move(w));
}

StoredTags load_tags(const std::filesystem::path& path) {
  const Bytes payload = read_checked(path, kTagMagic);
  net::Reader r(payload);
  StoredTags out;
  out.tag_bits = static_cast<std::size_t>(r.varint());
  out.tags = read_bigint_list(r);
  r.expect_done();
  for (const auto& tag : out.tags) {
    if (tag.bit_length() > out.tag_bits) {
      throw CodecError("persist: tag exceeds declared width");
    }
  }
  return out;
}

}  // namespace ice::proto
