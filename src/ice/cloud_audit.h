// Cloud-side provable data possession.
//
// The paper assumes back-end cloud integrity is handled by prior PDP work
// ([3], [8]); this module supplies that substrate with the same HVT
// machinery as ICE. Unlike the edge audit (which challenges every cached
// block), the cloud audit follows the classic PDP recipe: sample c random
// block indexes per challenge, giving detection probability 1-(1-f)^c for
// corrupted fraction f at O(c) cost regardless of file size.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/random.h"
#include "ice/csp_service.h"
#include "ice/keys.h"
#include "ice/params.h"
#include "ice/protocol.h"
#include "ice/user_client.h"

namespace ice::proto {

struct CloudAuditResult {
  bool pass = false;
  std::vector<std::size_t> sampled;  // which blocks were challenged
};

/// Detection probability of sampling `c` of `n` blocks when `corrupted`
/// of them are bad (hypergeometric complement).
double sampling_detection_probability(std::size_t n, std::size_t corrupted,
                                      std::size_t c);

/// Runs one sampled PDP audit of the CSP: draws `sample_size` distinct
/// random indexes, challenges the CSP over them, privately retrieves the
/// corresponding tags through `user`, and verifies.
CloudAuditResult audit_cloud(UserClient& user, net::RpcChannel& csp_channel,
                             std::size_t sample_size, bn::Rng64& rng);

}  // namespace ice::proto
