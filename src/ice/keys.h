// ICE KeyGen (paper Sec. III-A).
//
// pk = (N, g) and sk = (p, q) with N = pq, p = 2p'+1 and q = 2q'+1 safe
// primes, and g = b^2 mod N for random b with gcd(b-1, N) = gcd(b+1, N) = 1.
// g then generates the quadratic-residue subgroup of order p'q', which is
// what the KEA1-r security argument needs.
#pragma once

#include <optional>

#include "bignum/bigint.h"
#include "bignum/random.h"
#include "ice/params.h"

namespace ice::proto {

struct PublicKey {
  bn::BigInt n;  // RSA modulus N = pq
  bn::BigInt g;  // generator of QR_N

  /// K = |N| in bits.
  [[nodiscard]] std::size_t modulus_bits() const { return n.bit_length(); }
};

struct SecretKey {
  bn::BigInt p;
  bn::BigInt q;
};

struct KeyPair {
  PublicKey pk;
  SecretKey sk;
};

/// Full KeyGen: samples fresh safe primes of modulus_bits/2 bits each.
/// Expensive for production sizes (minutes at 1024-bit); tests and
/// benchmarks should prefer keygen_from_primes with cached safe primes.
KeyPair keygen(const ProtocolParams& params, bn::Rng64& rng);

/// KeyGen from pre-generated safe primes p and q (validated: both must be
/// distinct safe primes of equal bit length). Throws ParamError otherwise.
/// Set `validate_primality` false to skip the Miller-Rabin re-check when the
/// caller already trusts the primes (benchmark hot paths).
KeyPair keygen_from_primes(const bn::BigInt& p, const bn::BigInt& q,
                           bn::Rng64& rng, bool validate_primality = true);

/// Checks the structural pk invariants a verifier can test without sk:
/// N odd and composite-sized, g in (1, N) a quadratic residue candidate.
bool plausible_public_key(const PublicKey& pk);

}  // namespace ice::proto
