#include "ice/wire.h"

#include <algorithm>

#include "common/error.h"

namespace ice::proto {

void write_gf4_vector(net::Writer& w, const gf::GF4Vector& v) {
  // The packed scratch is thread-local: steady-state response encoding
  // reuses one byte buffer instead of allocating per vector.
  static thread_local Bytes packed;
  pir::pack_gf4_into(v, packed);
  w.varint(v.size());
  w.bytes(packed);
}

gf::GF4Vector read_gf4_vector(net::Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > (std::uint64_t{1} << 24)) {
    throw CodecError("read_gf4_vector: implausible length");
  }
  // Unpack straight from the frame view — no intermediate copy.
  return pir::unpack_gf4(r.bytes_view(), static_cast<std::size_t>(count));
}

void write_pir_query(net::Writer& w, const pir::PirQuery& q) {
  w.varint(q.points.size());
  for (const auto& p : q.points) write_gf4_vector(w, p);
}

pir::PirQuery read_pir_query(net::Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > (std::uint64_t{1} << 20)) {
    throw CodecError("read_pir_query: implausible count");
  }
  pir::PirQuery q;
  q.points.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining())));
  for (std::uint64_t i = 0; i < count; ++i) {
    q.points.push_back(read_gf4_vector(r));
  }
  return q;
}

void write_pir_response(net::Writer& w, const pir::PirResponse& resp) {
  w.varint(resp.entries.size());
  for (const auto& e : resp.entries) {
    write_gf4_vector(w, e.values);
    // Gradients are gamma coordinate vectors of uniform length K; flatten
    // them into one packed GF(4) string to avoid per-vector length
    // overhead (this is the dominant share of the TPA->User bytes in
    // Tab. I).
    const std::size_t inner =
        e.gradients.empty() ? 0 : e.gradients.front().size();
    w.varint(inner);
    static thread_local gf::GF4Vector flat;
    flat.clear();
    flat.reserve(e.gradients.size() * inner);
    for (const auto& g : e.gradients) {
      if (g.size() != inner) {
        throw CodecError("write_pir_response: ragged gradients");
      }
      flat.insert(flat.end(), g.begin(), g.end());
    }
    write_gf4_vector(w, flat);
  }
}

pir::PirResponse read_pir_response(net::Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > (std::uint64_t{1} << 20)) {
    throw CodecError("read_pir_response: implausible count");
  }
  pir::PirResponse resp;
  resp.entries.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining())));
  for (std::uint64_t i = 0; i < count; ++i) {
    pir::PirSingleResponse e;
    e.values = read_gf4_vector(r);
    const std::uint64_t inner = r.varint();
    if (inner > (std::uint64_t{1} << 16)) {
      throw CodecError("read_pir_response: implausible gradient length");
    }
    const gf::GF4Vector flat = read_gf4_vector(r);
    if (inner != 0 && flat.size() % inner != 0) {
      throw CodecError("read_pir_response: gradient size mismatch");
    }
    const std::size_t rows = inner == 0 ? 0 : flat.size() / inner;
    e.gradients.reserve(rows);
    for (std::size_t row = 0; row < rows; ++row) {
      e.gradients.emplace_back(
          flat.begin() + static_cast<std::ptrdiff_t>(row * inner),
          flat.begin() + static_cast<std::ptrdiff_t>((row + 1) * inner));
    }
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

void write_shard_map(net::Writer& w, const pir::ShardMap& map) {
  w.u64(map.epoch());
  w.varint(map.num_shards());
  for (const pir::ShardRange& range : map.ranges()) {
    w.varint(range.size());
  }
}

pir::ShardMap read_shard_map(net::Reader& r) {
  const std::uint64_t epoch = r.u64();
  const std::uint64_t count = r.varint();
  if (count == 0 || count > (std::uint64_t{1} << 16)) {
    throw CodecError("read_shard_map: implausible shard count");
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t size = r.varint();
    if (size > (std::uint64_t{1} << 40)) {
      throw CodecError("read_shard_map: implausible shard size");
    }
    sizes.push_back(static_cast<std::size_t>(size));
  }
  return pir::ShardMap::from_sizes(sizes, epoch);
}

void write_sharded_query(net::Writer& w, const pir::ShardedPirQuery& q) {
  w.u64(q.epoch);
  w.varint(q.shards.size());
  for (const pir::ShardQuery& s : q.shards) {
    w.u32(s.shard);
    write_pir_query(w, s.query);
  }
}

pir::ShardedPirQuery read_sharded_query(net::Reader& r) {
  pir::ShardedPirQuery q;
  q.epoch = r.u64();
  const std::uint64_t count = r.varint();
  if (count > (std::uint64_t{1} << 16)) {
    throw CodecError("read_sharded_query: implausible shard count");
  }
  q.shards.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining())));
  for (std::uint64_t i = 0; i < count; ++i) {
    pir::ShardQuery s;
    s.shard = r.u32();
    s.query = read_pir_query(r);
    q.shards.push_back(std::move(s));
  }
  return q;
}

void write_sharded_response(net::Writer& w,
                            const pir::ShardedPirResponse& resp) {
  w.varint(resp.shards.size());
  for (const pir::ShardResponse& s : resp.shards) {
    w.u32(s.shard);
    write_pir_response(w, s.response);
  }
}

pir::ShardedPirResponse read_sharded_response(net::Reader& r) {
  pir::ShardedPirResponse resp;
  const std::uint64_t count = r.varint();
  if (count > (std::uint64_t{1} << 16)) {
    throw CodecError("read_sharded_response: implausible shard count");
  }
  resp.shards.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining())));
  for (std::uint64_t i = 0; i < count; ++i) {
    pir::ShardResponse s;
    s.shard = r.u32();
    s.response = read_pir_response(r);
    resp.shards.push_back(std::move(s));
  }
  return resp;
}

void write_bigint_list(net::Writer& w, const std::vector<bn::BigInt>& v) {
  w.varint(v.size());
  for (const auto& x : v) w.bigint(x);
}

std::vector<bn::BigInt> read_bigint_list(net::Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > (std::uint64_t{1} << 24)) {
    throw CodecError("read_bigint_list: implausible length");
  }
  std::vector<bn::BigInt> v;
  v.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining())));
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(r.bigint());
  return v;
}

void write_index_list(net::Writer& w, const std::vector<std::size_t>& v) {
  w.varint(v.size());
  for (std::size_t x : v) w.varint(x);
}

std::vector<std::size_t> read_index_list(net::Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > (std::uint64_t{1} << 24)) {
    throw CodecError("read_index_list: implausible length");
  }
  std::vector<std::size_t> v;
  v.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, r.remaining())));
  for (std::uint64_t i = 0; i < count; ++i) {
    v.push_back(static_cast<std::size_t>(r.varint()));
  }
  return v;
}

}  // namespace ice::proto
