// Cross-shard audit fan-out and merge (client side of the sharded PIR).
//
// The ShardPlanner is the user-device counterpart of pir::ShardedTagServer:
// it holds one Embedding + PirClient per shard of a ShardMap snapshot and
// turns a flat index list into per-shard sub-queries — each index encoded
// against ITS shard's embedding with a shard-local offset — then merges the
// per-shard partial responses back into the original request order and
// decodes exactly as the monolithic path does. Sub-queries are emitted in
// ascending shard id with request order preserved within a shard, and the
// z-direction pool is drawn in that emission order, so a 1-shard plan
// consumes the RNG identically to the legacy PirClient::encode call — the
// differential suite pins sharded == unsharded bit-for-bit on that.
//
// Fan-out/merge contract (mirrors the server's batched-claim evaluation):
// the plan's shard slots and the response's shard slots correspond 1:1 and
// are decoded independently into disjoint output positions, so the merge
// is deterministic regardless of how the server parallelized the shards.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/random.h"
#include "pir/client.h"
#include "pir/embedding.h"
#include "pir/messages.h"
#include "pir/shard_map.h"
#include "pir/sharded_server.h"

namespace ice::proto {

/// One planned fan-out: the two auditors' sharded queries plus everything
/// needed to merge/decode their partials. Never leaves the user device
/// except for `queries`.
struct ShardPlan {
  pir::ShardedPirQuery queries[pir::PirClient::kNumServers];
  /// Per touched shard (same order as queries[tau].shards): the decode
  /// secrets for that shard's sub-query.
  std::vector<pir::QuerySecrets> secrets;
  /// Per touched shard: the positions in the ORIGINAL index list that the
  /// sub-query's points came from (scatter map for the merge).
  std::vector<std::vector<std::size_t>> origins;

  [[nodiscard]] std::size_t total_points() const {
    return queries[0].total_points();
  }
};

class ShardPlanner {
 public:
  /// Builds per-shard embeddings/clients for a shard-map snapshot. Total
  /// embedding work is O(n) across shards — same as the one monolithic
  /// embedding it replaces. `tag_bits` is K.
  ShardPlanner(pir::ShardMap map, std::size_t tag_bits);

  [[nodiscard]] const pir::ShardMap& map() const { return map_; }
  [[nodiscard]] std::uint64_t epoch() const { return map_.epoch(); }
  [[nodiscard]] std::size_t tag_bits() const { return tag_bits_; }

  /// Routes `indices` (global, each < map().n(), duplicates allowed) to
  /// the shards they touch and encodes one sub-query per touched shard.
  [[nodiscard]] ShardPlan plan(std::span<const std::size_t> indices,
                               bn::Rng64& rng) const;

  /// Merges the two auditors' partial responses and decodes the tags back
  /// into the original request order. Throws ProtocolError when a
  /// response's shard list does not match the plan.
  [[nodiscard]] std::vector<bn::BigInt> merge_decode(
      const ShardPlan& plan, const pir::ShardedPirResponse& r0,
      const pir::ShardedPirResponse& r1) const;

 private:
  pir::ShardMap map_;
  std::size_t tag_bits_;
  // unique_ptr slots: PirClient keeps a non-owning Embedding pointer.
  std::vector<std::unique_ptr<pir::Embedding>> embeddings_;
  std::vector<std::unique_ptr<pir::PirClient>> clients_;
};

/// Direct in-process sharded retrieval against two ShardedTagServer
/// replicas (the fan-out analogue of retrieve_tags_direct; used by tests
/// and benches without a transport in the loop).
std::vector<bn::BigInt> retrieve_tags_sharded(
    const pir::ShardedTagServer& tpa0, const pir::ShardedTagServer& tpa1,
    std::span<const std::size_t> indices, bn::Rng64& rng);

}  // namespace ice::proto
