// The tag-side state one TPA keeps for one user's file.
//
// TPASetup (paper Sec. III-A): given the n tags, fix gamma and the embedding
// phi, and build the polynomial/matrix representation used to answer
// private tag queries. Both TPAs hold identical replicas (the 2-server PIR
// non-collusion assumption).
//
// Since PR 7 the store is range-sharded (pir/sharded_server.h): with
// `params.shard_budget` > 0 the tag space is partitioned into contiguous
// shards, each an independent TPASetup instance, and queries fan out to the
// shards they touch. `shard_budget` = 0 keeps the paper's monolithic layout;
// the legacy single-shard surface (`embedding()`, `respond()`) remains for
// that case and throws on a sharded store.
//
// Since PR 9 the store runs the epoch engine (DESIGN.md §15): `update()`
// stages into the next epoch, `close_epoch()` merges, and audit sessions
// take a SnapshotPin for their whole lifetime. A pin is advisory — the
// hard snapshot guarantee comes from the sharded server's structure lock —
// but it lets a non-forced close refuse while audits are in flight instead
// of failing them, and it feeds the pins_active counter.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "bignum/bigint.h"
#include "ice/params.h"
#include "pir/client.h"
#include "pir/server.h"
#include "pir/sharded_server.h"

namespace ice::proto {

/// RAII snapshot pin held by an audit session (stashed in session state, so
/// it must survive thread handoff: a shared_ptr with a counting deleter,
/// not a shared_mutex — unlock_shared from another thread would be UB).
/// Releasing the last copy decrements the store's active-pin count.
using SnapshotPin = std::shared_ptr<const void>;

/// Store-level epoch counters (ISSUE 9 satellite: stats surface).
struct StoreEpochStats {
  pir::EpochStats db;                // aggregated across shards
  std::uint64_t pins_taken = 0;      // lifetime SnapshotPin count
  std::uint64_t pins_active = 0;     // currently outstanding
  std::uint64_t closes_skipped = 0;  // non-forced closes refused by pins
};

class TagStore {
 public:
  /// Takes ownership of the tag set; K comes from `params.tag_bits()`,
  /// the shard partition from `params.shard_budget`.
  TagStore(const ProtocolParams& params, std::vector<bn::BigInt> tags,
           pir::EvalStrategy strategy = pir::EvalStrategy::kBitsliced);

  [[nodiscard]] std::size_t n() const { return server_.n(); }
  [[nodiscard]] std::size_t tag_bits() const { return server_.tag_bits(); }
  [[nodiscard]] std::size_t num_shards() const {
    return server_.num_shards();
  }
  [[nodiscard]] std::uint64_t epoch() const { return server_.epoch(); }
  [[nodiscard]] pir::ShardMap shard_map() const {
    return server_.map_snapshot();
  }

  /// Legacy monolithic surface; valid only while num_shards() == 1
  /// (throws ParamError otherwise, which the RPC layer surfaces as
  /// kInvalidArgument — sharded deployments use the sharded methods).
  [[nodiscard]] const pir::Embedding& embedding() const {
    return server_.single_embedding();
  }
  [[nodiscard]] pir::PirResponse respond(const pir::PirQuery& query) const {
    return server_.respond_single(query);
  }

  /// Plain (non-private) tag read; used by trusted-path tests and by the
  /// naive full-download baseline.
  [[nodiscard]] bn::BigInt tag(std::size_t index) const {
    return server_.tag(index);
  }

  /// Stages the replacement tag of an updated block (data dynamics) into
  /// the next epoch. Lock-light: rides alongside queries of the same shard
  /// and stays invisible until close_epoch().
  void update(std::size_t index, const bn::BigInt& tag) {
    server_.update(index, tag);
  }

  /// Legacy direct-write baseline (bench_updates A/B arm): exclusive
  /// content lock + full plane invalidation on the owning shard.
  void update_in_place(std::size_t index, const bn::BigInt& tag) {
    server_.update_in_place(index, tag);
  }

  /// Pins the current epoch snapshot for the lifetime of the returned
  /// handle. Cheap (one atomic increment); copies share the same pin.
  [[nodiscard]] SnapshotPin pin() const;
  [[nodiscard]] std::uint64_t pins_active() const {
    return latch_->load(std::memory_order_acquire);
  }

  /// Merges staged updates and advances the epoch. With `force` false the
  /// close is refused (closed=false, nothing merged) while any SnapshotPin
  /// is outstanding — operator tooling defers rather than invalidating
  /// in-flight audits. The verifier-driven path (UserClient) forces: its
  /// own epoch gate already excludes its audits.
  pir::EpochCloseResult close_epoch(bool force = false);

  /// Rows staged for the next epoch across all shards.
  [[nodiscard]] std::size_t staged_updates() const {
    return server_.staged_updates();
  }
  [[nodiscard]] StoreEpochStats epoch_stats() const;

  /// Appends a tag for a newly outsourced block; may split the tail shard.
  /// Structural: bumps the shard-map epoch. Returns the new global index.
  std::size_t append(const bn::BigInt& tag) { return server_.append(tag); }

  /// Splits shard `s` (operator-initiated rebalance). Structural: bumps
  /// the epoch. Returns the new upper shard id.
  std::size_t split(std::size_t s) { return server_.split(s); }

  /// Answers a cross-shard fan-out query (paper Alg. 1 "tag response",
  /// evaluated per shard in parallel). Throws pir::StaleShardMapError when
  /// the query's epoch is stale.
  void respond_sharded(const pir::ShardedPirQuery& query,
                       pir::ShardedPirResponse& out) const {
    server_.respond_sharded(query, out);
  }

  /// Forces the TPASetup preprocessing and reports its duration in seconds
  /// (paper Tab. III row "TPASetup"; summed across shards).
  double preprocess() { return server_.preprocess(); }

 private:
  pir::ShardedTagServer server_;
  // Pin latch: shared with every outstanding SnapshotPin's deleter, so a
  // pin released after the store is gone (session purged late) is safe.
  std::shared_ptr<std::atomic<std::uint64_t>> latch_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  mutable std::atomic<std::uint64_t> pins_taken_{0};
  std::atomic<std::uint64_t> closes_skipped_{0};
};

/// User-side helper: retrieves tags for `indices` from two TagStore replicas
/// (direct in-process variant used by tests and single-process simulations;
/// the RPC variant lives in user_client.h). Works for any shard count.
std::vector<bn::BigInt> retrieve_tags_direct(const TagStore& tpa0,
                                             const TagStore& tpa1,
                                             std::span<const std::size_t>
                                                 indices,
                                             bn::Rng64& rng);

}  // namespace ice::proto
