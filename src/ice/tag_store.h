// The tag-side state one TPA keeps for one user's file.
//
// TPASetup (paper Sec. III-A): given the n tags, fix gamma and the embedding
// phi, and build the polynomial/matrix representation used to answer
// private tag queries. Both TPAs hold identical replicas (the 2-server PIR
// non-collusion assumption).
//
// Since PR 7 the store is range-sharded (pir/sharded_server.h): with
// `params.shard_budget` > 0 the tag space is partitioned into contiguous
// shards, each an independent TPASetup instance, and queries fan out to the
// shards they touch. `shard_budget` = 0 keeps the paper's monolithic layout;
// the legacy single-shard surface (`embedding()`, `respond()`) remains for
// that case and throws on a sharded store.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bignum/bigint.h"
#include "ice/params.h"
#include "pir/client.h"
#include "pir/server.h"
#include "pir/sharded_server.h"

namespace ice::proto {

class TagStore {
 public:
  /// Takes ownership of the tag set; K comes from `params.tag_bits()`,
  /// the shard partition from `params.shard_budget`.
  TagStore(const ProtocolParams& params, std::vector<bn::BigInt> tags,
           pir::EvalStrategy strategy = pir::EvalStrategy::kBitsliced);

  [[nodiscard]] std::size_t n() const { return server_.n(); }
  [[nodiscard]] std::size_t tag_bits() const { return server_.tag_bits(); }
  [[nodiscard]] std::size_t num_shards() const {
    return server_.num_shards();
  }
  [[nodiscard]] std::uint64_t epoch() const { return server_.epoch(); }
  [[nodiscard]] pir::ShardMap shard_map() const {
    return server_.map_snapshot();
  }

  /// Legacy monolithic surface; valid only while num_shards() == 1
  /// (throws ParamError otherwise, which the RPC layer surfaces as
  /// kInvalidArgument — sharded deployments use the sharded methods).
  [[nodiscard]] const pir::Embedding& embedding() const {
    return server_.single_embedding();
  }
  [[nodiscard]] pir::PirResponse respond(const pir::PirQuery& query) const {
    return server_.respond_single(query);
  }

  /// Plain (non-private) tag read; used by trusted-path tests and by the
  /// naive full-download baseline.
  [[nodiscard]] bn::BigInt tag(std::size_t index) const {
    return server_.tag(index);
  }

  /// Replaces the tag of an updated block (data dynamics). Serialized
  /// against queries only on the owning shard.
  void update(std::size_t index, const bn::BigInt& tag) {
    server_.update(index, tag);
  }

  /// Appends a tag for a newly outsourced block; may split the tail shard.
  /// Structural: bumps the shard-map epoch. Returns the new global index.
  std::size_t append(const bn::BigInt& tag) { return server_.append(tag); }

  /// Splits shard `s` (operator-initiated rebalance). Structural: bumps
  /// the epoch. Returns the new upper shard id.
  std::size_t split(std::size_t s) { return server_.split(s); }

  /// Answers a cross-shard fan-out query (paper Alg. 1 "tag response",
  /// evaluated per shard in parallel). Throws pir::StaleShardMapError when
  /// the query's epoch is stale.
  void respond_sharded(const pir::ShardedPirQuery& query,
                       pir::ShardedPirResponse& out) const {
    server_.respond_sharded(query, out);
  }

  /// Forces the TPASetup preprocessing and reports its duration in seconds
  /// (paper Tab. III row "TPASetup"; summed across shards).
  double preprocess() { return server_.preprocess(); }

 private:
  pir::ShardedTagServer server_;
};

/// User-side helper: retrieves tags for `indices` from two TagStore replicas
/// (direct in-process variant used by tests and single-process simulations;
/// the RPC variant lives in user_client.h). Works for any shard count.
std::vector<bn::BigInt> retrieve_tags_direct(const TagStore& tpa0,
                                             const TagStore& tpa1,
                                             std::span<const std::size_t>
                                                 indices,
                                             bn::Rng64& rng);

}  // namespace ice::proto
