// The tag-side state one TPA keeps for one user's file.
//
// TPASetup (paper Sec. III-A): given the n tags, fix gamma and the embedding
// phi, and build the polynomial/matrix representation used to answer
// private tag queries. Both TPAs hold identical replicas (the 2-server PIR
// non-collusion assumption).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bignum/bigint.h"
#include "ice/params.h"
#include "pir/client.h"
#include "pir/server.h"

namespace ice::proto {

class TagStore {
 public:
  /// Takes ownership of the tag set; K comes from `params.tag_bits()`.
  TagStore(const ProtocolParams& params, std::vector<bn::BigInt> tags,
           pir::EvalStrategy strategy = pir::EvalStrategy::kBitsliced);

  [[nodiscard]] std::size_t n() const { return db_.size(); }
  [[nodiscard]] std::size_t tag_bits() const { return db_.tag_bits(); }
  [[nodiscard]] const pir::Embedding& embedding() const { return *embedding_; }

  /// Plain (non-private) tag read; used by trusted-path tests and by the
  /// naive full-download baseline.
  [[nodiscard]] bn::BigInt tag(std::size_t index) const {
    return db_.tag(index);
  }

  /// Replaces the tag of an updated block (data dynamics).
  void update(std::size_t index, const bn::BigInt& tag) {
    db_.update(index, tag);
  }

  /// Answers one PIR query batch (paper Alg. 1 "tag response").
  [[nodiscard]] pir::PirResponse respond(const pir::PirQuery& query) const {
    return server_.respond(query);
  }

  /// Forces the TPASetup preprocessing and reports its duration in seconds
  /// (paper Tab. III row "TPASetup").
  double preprocess() { return db_.build_planes(); }

 private:
  pir::TagDatabase db_;
  std::unique_ptr<pir::Embedding> embedding_;  // stable address for server_
  pir::PirServer server_;
};

/// User-side helper: retrieves tags for `indices` from two TagStore replicas
/// (direct in-process variant used by tests and single-process simulations;
/// the RPC variant lives in entities.h).
std::vector<bn::BigInt> retrieve_tags_direct(const TagStore& tpa0,
                                             const TagStore& tpa1,
                                             std::span<const std::size_t>
                                                 indices,
                                             bn::Rng64& rng);

}  // namespace ice::proto
