#include "ice/fleet_scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace ice::proto {

FleetScheduler::FleetScheduler(const FleetSchedulerConfig& config)
    : config_(config) {
  if (config_.round_budget == 0) {
    throw ParamError("FleetScheduler: round_budget must be >= 1");
  }
  if (config_.risk_decay < 0.0 || config_.risk_decay >= 1.0) {
    throw ParamError("FleetScheduler: risk_decay must be in [0, 1)");
  }
}

std::size_t FleetScheduler::staleness_bound() const {
  if (config_.max_staleness != 0) return config_.max_staleness;
  const std::size_t n = std::max<std::size_t>(entries_.size(), 1);
  const std::size_t sweep =
      (n + config_.round_budget - 1) / config_.round_budget;
  return std::max<std::size_t>(2 * sweep, 1);
}

void FleetScheduler::add_edge(std::uint32_t edge_id) {
  if (find(edge_id) != nullptr) {
    throw ParamError("FleetScheduler: duplicate edge id");
  }
  Entry e;
  e.edge_id = edge_id;
  // One sweep short of forced: audited within ~one round_budget period.
  const std::size_t bound = staleness_bound();
  const std::size_t sweep = std::max<std::size_t>(bound / 2, 1);
  e.staleness = bound > sweep ? bound - sweep : bound;
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), edge_id,
      [](const Entry& a, std::uint32_t id) { return a.edge_id < id; });
  entries_.insert(pos, std::move(e));
}

void FleetScheduler::note_risk(std::uint32_t edge_id, double delta) {
  Entry* e = find(edge_id);
  if (e == nullptr) return;
  e->risk = std::min(config_.risk_cap,
                     e->risk + (delta > 0.0 ? delta : config_.failure_risk));
}

double FleetScheduler::priority(const Entry& e) const {
  return config_.staleness_weight * static_cast<double>(e.staleness) +
         config_.risk_weight * e.risk;
}

std::vector<std::uint32_t> FleetScheduler::plan_round() {
  for (Entry& e : entries_) e.audited_this_round = false;

  // Index sort, highest priority first, ties toward the lower edge id (the
  // entries_ vector is id-sorted, so a stable sort on priority alone does
  // exactly that).
  std::vector<std::size_t> order(entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return priority(entries_[a]) > priority(entries_[b]);
                   });

  const std::size_t bound = staleness_bound();
  std::vector<std::uint32_t> plan;
  plan.reserve(std::min(entries_.size(), config_.round_budget));
  std::vector<bool> chosen(entries_.size(), false);
  for (std::size_t i = 0;
       i < order.size() && plan.size() < config_.round_budget; ++i) {
    plan.push_back(entries_[order[i]].edge_id);
    chosen[order[i]] = true;
  }
  // Forced inclusion — the starvation-freedom / bounded-detection hook: an
  // edge at the staleness bound rides along even past the budget. In the
  // priority order above such edges usually already won a slot; this sweep
  // only fires when risk-heavy edges crowded the whole budget.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!chosen[i] && entries_[i].staleness >= bound) {
      plan.push_back(entries_[i].edge_id);
    }
  }
  return plan;
}

void FleetScheduler::record(std::uint32_t edge_id, bool pass) {
  Entry* e = find(edge_id);
  if (e == nullptr) {
    throw ParamError("FleetScheduler: record for unknown edge");
  }
  e->staleness = 0;
  e->audited_this_round = true;
  if (pass) {
    e->risk *= config_.risk_decay;
  } else {
    e->risk = std::min(config_.risk_cap, e->risk + config_.failure_risk);
  }
}

void FleetScheduler::finish_round() {
  ++rounds_;
  for (Entry& e : entries_) {
    if (!e.audited_this_round) ++e.staleness;
    e.audited_this_round = false;
  }
}

std::size_t FleetScheduler::staleness(std::uint32_t edge_id) const {
  const Entry* e = find(edge_id);
  if (e == nullptr) throw ParamError("FleetScheduler: unknown edge");
  return e->staleness;
}

double FleetScheduler::risk(std::uint32_t edge_id) const {
  const Entry* e = find(edge_id);
  if (e == nullptr) throw ParamError("FleetScheduler: unknown edge");
  return e->risk;
}

const FleetScheduler::Entry* FleetScheduler::find(
    std::uint32_t edge_id) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), edge_id,
      [](const Entry& a, std::uint32_t id) { return a.edge_id < id; });
  if (it == entries_.end() || it->edge_id != edge_id) return nullptr;
  return &*it;
}

FleetScheduler::Entry* FleetScheduler::find(std::uint32_t edge_id) {
  return const_cast<Entry*>(
      static_cast<const FleetScheduler*>(this)->find(edge_id));
}

}  // namespace ice::proto
