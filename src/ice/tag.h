// TagGen (paper Sec. III-A): T_i = g^{b_i} mod N.
//
// The block content is the exponent, so tag generation costs one modular
// exponentiation with a |block|-bit exponent — the dominant user-side setup
// cost measured in the paper's Tab. III. Two engine-level optimizations
// apply: g is a long-lived base, so each tag runs on a cached Lim-Lee comb
// (bignum/fixed_base.h) instead of a generic pow, and whole-file tagging
// fans out over the shared pool into disjoint slots.
#pragma once

#include <memory>
#include <vector>

#include "bignum/montgomery.h"
#include "common/bytes.h"
#include "ice/keys.h"

namespace ice::proto {

/// Reusable tag generator bound to one public key (shares the process-wide
/// Montgomery context and its comb tables, so per-tag precomputation is
/// amortized across files and instances).
class TagGenerator {
 public:
  explicit TagGenerator(PublicKey pk);

  /// Tag of one block: g^{block-as-integer} mod N.
  [[nodiscard]] bn::BigInt tag(BytesView block) const;

  /// Tags for a whole file. `parallelism` follows the
  /// ProtocolParams::parallelism convention (0 = one chunk per hardware
  /// thread, 1 = the serial legacy path); blocks are independent, so they
  /// shard into disjoint output slots and the result is bit-identical at
  /// every thread count.
  [[nodiscard]] std::vector<bn::BigInt> tag_all(
      const std::vector<Bytes>& blocks, std::size_t parallelism = 0) const;

  /// In-place tag_all: resizes `out` to blocks.size() and overwrites each
  /// slot. With a warm `out`, the per-tag loop allocates nothing — block
  /// exponents land in a reused thread-local BigInt and comb evaluation
  /// runs on arena scratch.
  void tag_all_into(const std::vector<Bytes>& blocks, std::size_t parallelism,
                    std::vector<bn::BigInt>& out) const;

  /// g^{m * s_tilde} mod N — the re-tag of an updated block used in
  /// VerifyEdge step 2 (the user substitutes this for the stored tag).
  [[nodiscard]] bn::BigInt updated_tag(BytesView block,
                                       const bn::BigInt& s_tilde) const;

  [[nodiscard]] const PublicKey& pk() const { return pk_; }
  [[nodiscard]] const bn::Montgomery& mont() const { return *mont_; }

 private:
  PublicKey pk_;
  std::shared_ptr<const bn::Montgomery> mont_;
};

}  // namespace ice::proto
