// TagGen (paper Sec. III-A): T_i = g^{b_i} mod N.
//
// The block content is the exponent, so tag generation costs one modular
// exponentiation with a |block|-bit exponent — the dominant user-side setup
// cost measured in the paper's Tab. III.
#pragma once

#include <memory>
#include <vector>

#include "bignum/montgomery.h"
#include "common/bytes.h"
#include "ice/keys.h"

namespace ice::proto {

/// Reusable tag generator bound to one public key (owns the Montgomery
/// context so the per-tag precomputation is amortized).
class TagGenerator {
 public:
  explicit TagGenerator(PublicKey pk);

  /// Tag of one block: g^{block-as-integer} mod N.
  [[nodiscard]] bn::BigInt tag(BytesView block) const;

  /// Tags for a whole file.
  [[nodiscard]] std::vector<bn::BigInt> tag_all(
      const std::vector<Bytes>& blocks) const;

  /// g^{m * s_tilde} mod N — the re-tag of an updated block used in
  /// VerifyEdge step 2 (the user substitutes this for the stored tag).
  [[nodiscard]] bn::BigInt updated_tag(BytesView block,
                                       const bn::BigInt& s_tilde) const;

  [[nodiscard]] const PublicKey& pk() const { return pk_; }
  [[nodiscard]] const bn::Montgomery& mont() const { return mont_; }

 private:
  PublicKey pk_;
  bn::Montgomery mont_;
};

}  // namespace ice::proto
