// ICE-batch: one verification round covering J edges (paper Sec. V).
//
// Differences from ICE-basic:
//   * the TPA contributes a single secret s (one g_s for all edges) while
//     the USER draws the per-edge challenge keys e_j — the TPA never sees
//     them, so it cannot tell which tags fed which edge's proof;
//   * edge proofs carry no user blinding s~; instead the user folds the
//     coefficient aggregation into the repacked tags, exponentiating each
//     union tag by sum of that block's coefficients across the edges
//     holding it;
//   * the TPA only multiplies: R = prod_k T~_{U,k}, P~ = R^s, and accepts
//     iff prod_j P_j = P~. Overlapping pre-downloads therefore cost the TPA
//     nothing extra — the effect measured in Fig. 7/8.
#pragma once

#include <vector>

#include "bignum/bigint.h"
#include "bignum/random.h"
#include "common/bytes.h"
#include "ice/keys.h"
#include "ice/params.h"
#include "ice/protocol.h"

namespace ice::proto {

/// TPA side: one secret s and the shared g_s for the whole batch.
Challenge make_batch_base(const PublicKey& pk, bn::Rng64& rng,
                          ChallengeSecret& secret_out);

/// User side: J independent challenge keys e_1..e_J.
std::vector<bn::BigInt> draw_challenge_keys(const ProtocolParams& params,
                                            std::size_t edges,
                                            bn::Rng64& rng);

/// Edge side: P_j = (g_s)^{sum_k a_k^{(j)} m_{j,k}} mod N.
Proof make_batch_proof(const PublicKey& pk, const ProtocolParams& params,
                       const std::vector<Bytes>& blocks, const bn::BigInt& e_j,
                       const bn::BigInt& g_s);

/// Whole-batch fan-out: P_j for every edge in one call, the per-edge proofs
/// spread across the shared pool (params.parallelism chunks). Each proof is
/// a sequential squaring chain internally, so cross-edge fan-out — not
/// intra-modexp splitting — is what scales with cores; this is the shape
/// the ICE-batch round (paper Sec. V) runs J edges through.
/// `edge_blocks[j]` pairs with `challenge_keys[j]`.
std::vector<Proof> make_batch_proofs(
    const PublicKey& pk, const ProtocolParams& params,
    const std::vector<std::vector<Bytes>>& edge_blocks,
    const std::vector<bn::BigInt>& challenge_keys, const bn::BigInt& g_s);

/// User side: the union U of the edges' pre-download sets, sorted.
std::vector<std::size_t> union_of_sets(
    const std::vector<std::vector<std::size_t>>& edge_sets);

/// User side: repacks the union tags with aggregated coefficients.
/// `union_indices` must be union_of_sets(edge_sets); `union_tags[i]` is the
/// tag of block union_indices[i]; `challenge_keys[j]` pairs with
/// edge_sets[j]. Throws ParamError on inconsistent inputs.
std::vector<bn::BigInt> batch_repack(
    const PublicKey& pk, const ProtocolParams& params,
    const std::vector<std::size_t>& union_indices,
    const std::vector<bn::BigInt>& union_tags,
    const std::vector<std::vector<std::size_t>>& edge_sets,
    const std::vector<bn::BigInt>& challenge_keys);

/// TPA side: R = prod T~, P~ = R^s, P = prod P_j; accept iff equal.
/// `parallelism` follows the ProtocolParams::parallelism convention
/// (0 = hardware concurrency, 1 = single-threaded legacy path).
bool verify_batch(const PublicKey& pk,
                  const std::vector<bn::BigInt>& repacked_tags,
                  const std::vector<Proof>& proofs,
                  const ChallengeSecret& secret,
                  std::size_t parallelism = 0);

}  // namespace ice::proto
