// Per-session protocol state machines for the session-core services.
//
// Each in-flight audit/batch/blinding is one value in a sharded session
// table (common/sharded_map.h) keyed by the user-chosen session nonce.
// Mutating a session means holding only its shard lock, so unrelated
// sessions never contend and no service-wide mutex exists on the audit
// path. Tables are TTL-bounded: an abandoned session (user never submits
// repacked tags, batch never finishes) evicts itself.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sharded_map.h"
#include "ice/protocol.h"

namespace ice::proto {

/// One ICE-basic audit at the TPA (paper §IV): created by start_audit,
/// consumed by submit_repacked.
struct AuditSession {
  enum class State {
    kChallenging,   // challenge round trip to the edge still in flight
    kAwaitingTags,  // proof parked; waiting for the repacked tags
  };

  State state = State::kChallenging;
  std::uint32_t edge_id = 0;
  Challenge challenge;
  ChallengeSecret secret;
  Proof proof;  // valid once state == kAwaitingTags
  /// Coefficients pre-expanded offline when this session was served from
  /// the challenge pool (ice/offline.h); empty on the cold path. verify
  /// uses the first |S_j| entries when enough were expanded and falls back
  /// to the online expansion otherwise — bit-identical either way.
  std::vector<bn::BigInt> coeffs;
  /// Epoch snapshot pin (TagStore::pin): held from start_audit until the
  /// session is consumed or TTL-purged, so a non-forced epoch close defers
  /// while this audit is in flight. Type-erased shared_ptr — releasing it
  /// from whichever thread extracts the session is safe.
  std::shared_ptr<const void> store_pin;
};

/// One ICE-batch round at the TPA (paper §V): created by batch_begin,
/// filled by per-edge submit_proof calls, consumed by batch_finish.
struct BatchSession {
  ChallengeSecret secret;
  std::size_t expected_proofs = 0;
  std::vector<Proof> proofs;
  /// Same role as AuditSession::store_pin, for the whole batch round.
  std::shared_ptr<const void> store_pin;

  [[nodiscard]] bool complete() const {
    return proofs.size() == expected_proofs;
  }
};

/// The blinding s~ a user shared with an edge for one upcoming challenge;
/// consumed (one-shot) when the TPA's challenge arrives.
struct BlindingSession {
  bn::BigInt s_tilde;
};

template <typename Session>
using SessionTable = ShardedMap<std::uint64_t, Session>;

/// Cap on concurrently open sessions per table (hostile users must not
/// exhaust service memory) and how long an abandoned session lingers.
constexpr std::size_t kMaxOpenSessions = 4096;
constexpr std::chrono::minutes kSessionTtl{10};

[[nodiscard]] inline ShardedMapConfig session_table_config(
    std::size_t max_entries = kMaxOpenSessions) {
  ShardedMapConfig config;
  config.ttl = kSessionTtl;
  config.max_entries = max_entries;
  return config;
}

}  // namespace ice::proto
