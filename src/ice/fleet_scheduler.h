// Fleet-scale TPA audit scheduler.
//
// A production TPA is not asked to audit one edge; it watches a fleet of
// hundreds to thousands of edge caches and must decide, round after round,
// WHICH edges to spend its audit budget on. This scheduler prioritizes by
// two signals:
//
//   * staleness — rounds since the edge was last audited. Every edge's
//     staleness grows by one per round until an audit resets it, so
//     integrity guarantees stay fleet-wide instead of clustering on a few
//     hot edges.
//   * risk — an exponentially decayed suspicion score. A failed audit
//     (or an external signal via note_risk: SMART warnings, crash loops,
//     the corruption classes of mec/corruption.h) spikes it; every clean
//     audit halves it.
//
// priority = staleness_weight * staleness + risk_weight * risk, highest
// first. On top of the scored selection, any edge whose staleness reaches
// max_staleness is FORCE-included in the next round even beyond the budget.
// That forcing is what turns the heuristic into guarantees:
//
//   * starvation-freedom — no edge's staleness ever exceeds max_staleness,
//     whatever the risk distribution looks like;
//   * bounded detection — a corruption on any edge is audited (and, since
//     the protocol has no false negatives, detected) within max_staleness
//     rounds of appearing.
//
// tests/ice/fleet_scheduler_test.cpp pins both bounds; sim/simulator.h
// drives a full protocol fleet through this scheduler and
// bench/bench_fleet.cpp measures rounds at 100-1000 edges.
//
// Single-threaded by design: one scheduler instance belongs to the
// verifier's control loop. The audits it plans run in parallel; the
// planning itself is microseconds of arithmetic over E entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ice::proto {

struct FleetSchedulerConfig {
  /// Scored audits per round (forced inclusions may exceed this).
  std::size_t round_budget = 8;
  double staleness_weight = 1.0;
  double risk_weight = 4.0;
  /// Risk added by a failed audit (and the default for note_risk).
  double failure_risk = 8.0;
  /// Multiplicative risk decay per clean audit of that edge.
  double risk_decay = 0.5;
  double risk_cap = 16.0;
  /// Forced-inclusion threshold. 0 = auto: 2 * ceil(edges / round_budget),
  /// i.e. twice the period of a plain round-robin sweep — enough slack for
  /// risk-driven scheduling to matter, small enough that the detection
  /// bound stays within a handful of sweeps.
  std::size_t max_staleness = 0;
};

class FleetScheduler {
 public:
  explicit FleetScheduler(const FleetSchedulerConfig& config = {});

  /// Registers an edge. New edges start one sweep short of forced
  /// inclusion, so a freshly joined edge is audited within one round_budget
  /// period without instantly preempting the whole round.
  void add_edge(std::uint32_t edge_id);

  /// External suspicion signal (delta <= 0 uses config.failure_risk).
  /// Unknown edges are ignored.
  void note_risk(std::uint32_t edge_id, double delta = 0.0);

  /// Plans the next round: the round_budget highest-priority edges plus
  /// every edge at or past the forced-staleness threshold. Deterministic
  /// (ties break toward the lower edge id). Call record() for each audit
  /// outcome, then finish_round().
  [[nodiscard]] std::vector<std::uint32_t> plan_round();

  /// Reports one audit outcome from the current round: resets the edge's
  /// staleness, decays (pass) or spikes (fail) its risk.
  void record(std::uint32_t edge_id, bool pass);

  /// Closes the round: every edge NOT audited this round ages by one.
  void finish_round();

  [[nodiscard]] std::size_t edges() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  /// The forced-inclusion threshold in effect (auto-derived when the
  /// config said 0). No edge's staleness ever exceeds this.
  [[nodiscard]] std::size_t staleness_bound() const;
  [[nodiscard]] std::size_t staleness(std::uint32_t edge_id) const;
  [[nodiscard]] double risk(std::uint32_t edge_id) const;

 private:
  struct Entry {
    std::uint32_t edge_id = 0;
    std::size_t staleness = 0;
    double risk = 0.0;
    bool audited_this_round = false;
  };

  [[nodiscard]] double priority(const Entry& e) const;
  [[nodiscard]] const Entry* find(std::uint32_t edge_id) const;
  [[nodiscard]] Entry* find(std::uint32_t edge_id);

  FleetSchedulerConfig config_;
  std::vector<Entry> entries_;  // sorted by edge_id (binary-searchable)
  std::uint64_t rounds_ = 0;
};

}  // namespace ice::proto
