#include "ice/protocol.h"

#include "bignum/fixed_base.h"
#include "bignum/montgomery.h"
#include "bignum/multiexp.h"
#include "common/error.h"
#include "common/parallel.h"
#include "crypto/prf.h"

namespace ice::proto {

Challenge make_challenge(const PublicKey& pk, const ProtocolParams& params,
                         bn::Rng64& rng, ChallengeSecret& secret_out) {
  Challenge chal;
  // e in [1, 2^kappa - 1]: nonzero so the PRF key is never degenerate.
  do {
    chal.e = bn::random_below(rng, bn::BigInt(1)
                                       << params.challenge_key_bits);
  } while (chal.e.is_zero());
  secret_out.s = bn::random_unit(rng, pk.n);
  // g is the long-lived base of every challenge: the shared context's
  // Lim-Lee comb turns g^s into a chain |N|/h the length of a generic pow.
  const auto mont = bn::Montgomery::shared(pk.n);
  chal.g_s = mont->fixed_base(pk.g, pk.n.bit_length())->pow(secret_out.s);
  return chal;
}

Proof make_proof(const PublicKey& pk, const ProtocolParams& params,
                 const std::vector<Bytes>& blocks, const Challenge& challenge,
                 const bn::BigInt& s_tilde) {
  if (blocks.empty()) throw ParamError("make_proof: no blocks to prove");
  if (s_tilde.is_zero()) throw ParamError("make_proof: zero blinding");
  // Aggregate over the integers: sum_k a_k * m_k, then one modexp. The cost
  // profile the paper reports in Fig. 6 (flat in |S_j|, linear in block
  // size) comes exactly from this shape.
  //
  // The coefficient stream is sequential, so it is expanded up front; the
  // a_k * m_k products are then chunked across the shared pool and the
  // partial sums added in chunk order. Integer addition is exact, so the
  // aggregate is bit-identical at every thread count. The final modexp
  // stays single: its cost is a sequential squaring chain as long as the
  // aggregate (splitting the exponent cannot shorten that chain), so
  // cross-proof fan-out — not intra-modexp splitting — is where edge-side
  // wall-clock scaling comes from (see make_batch_proofs).
  const std::vector<bn::BigInt> coeffs = crypto::CoefficientPrf::expand(
      challenge.e, params.coeff_bits, blocks.size());
  std::vector<bn::BigInt> partials(
      chunk_count(blocks.size(), resolve_parallelism(params.parallelism)));
  parallel_chunks(blocks.size(), params.parallelism,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    bn::BigInt sum(0);
                    for (std::size_t k = begin; k < end; ++k) {
                      sum += coeffs[k] * bn::BigInt::from_bytes_be(blocks[k]);
                    }
                    partials[chunk] = std::move(sum);
                  });
  bn::BigInt aggregate(0);
  for (const auto& partial : partials) aggregate += partial;
  Proof proof;
  // g_s is challenge-fresh, so no comb: one generic pow on the cached
  // context (which still saves the per-call R^2 / n0inv derivation).
  proof.p = bn::Montgomery::shared(pk.n)->pow(challenge.g_s,
                                              aggregate * s_tilde);
  return proof;
}

std::vector<bn::BigInt> repack_tags(const PublicKey& pk,
                                    const std::vector<bn::BigInt>& tags,
                                    const bn::BigInt& s_tilde,
                                    std::size_t parallelism) {
  std::vector<bn::BigInt> out;
  repack_tags_into(pk, tags, s_tilde, parallelism, out);
  return out;
}

void repack_tags_into(const PublicKey& pk, const std::vector<bn::BigInt>& tags,
                      const bn::BigInt& s_tilde, std::size_t parallelism,
                      std::vector<bn::BigInt>& out) {
  const auto mont = bn::Montgomery::shared(pk.n);
  out.resize(tags.size());
  // Independent modexps into disjoint slots; the Montgomery context (and
  // its precomputed R^2, -N^{-1}) is shared read-only across chunks, and
  // pow_into reuses each slot's limb storage plus arena scratch.
  parallel_chunks(tags.size(), parallelism,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t k = begin; k < end; ++k) {
                      mont->pow_into(out[k], tags[k], s_tilde);
                    }
                  });
}

namespace {

/// Shared tail of the two verify paths: R = prod_k T~_k^{a_k}, expected =
/// R^s, compare with the (canonically reduced) claimed proof.
bool verify_with_coeffs(const PublicKey& pk, const ProtocolParams& params,
                        const std::vector<bn::BigInt>& repacked_tags,
                        const std::vector<bn::BigInt>& coeffs,
                        const ChallengeSecret& secret, const Proof& proof) {
  const auto mont = bn::Montgomery::shared(pk.n);
  // R = prod_k T~_k^{a_k} mod N: one simultaneous multi-exponentiation
  // sharing a single squaring chain across all |S_j| tags (multiexp.h),
  // chunked over the pool with partials combined in chunk order — the
  // canonical result is bit-identical to per-tag pow at every thread count.
  const bn::BigInt r =
      bn::multi_exp(*mont, repacked_tags, coeffs, params.parallelism);
  bn::BigInt expected;
  mont->pow_into(expected, r, secret.s);
  // One canonical reduction of the claimed proof (a no-op for wire-valid
  // proofs, which deserialization already range-checks).
  return expected == mont->reduce(proof.p);
}

}  // namespace

bool verify_proof(const PublicKey& pk, const ProtocolParams& params,
                  const std::vector<bn::BigInt>& repacked_tags,
                  const Challenge& challenge, const ChallengeSecret& secret,
                  const Proof& proof) {
  if (repacked_tags.empty()) {
    throw ParamError("verify_proof: no tags to verify against");
  }
  // Coefficients land in a warm thread-local vector (expand_into reuses
  // vector and limb capacity), the aggregate and the expected value live in
  // SBO limb storage: the steady-state verify allocates nothing.
  static thread_local std::vector<bn::BigInt> coeffs;
  crypto::CoefficientPrf::expand_into(challenge.e, params.coeff_bits,
                                      repacked_tags.size(), coeffs);
  return verify_with_coeffs(pk, params, repacked_tags, coeffs, secret, proof);
}

bool verify_proof_precomputed(const PublicKey& pk,
                              const ProtocolParams& params,
                              const std::vector<bn::BigInt>& repacked_tags,
                              const std::vector<bn::BigInt>& coeffs,
                              const ChallengeSecret& secret,
                              const Proof& proof) {
  if (repacked_tags.empty()) {
    throw ParamError("verify_proof: no tags to verify against");
  }
  if (coeffs.size() != repacked_tags.size()) {
    throw ParamError("verify_proof_precomputed: coefficient count mismatch");
  }
  return verify_with_coeffs(pk, params, repacked_tags, coeffs, secret, proof);
}

bn::BigInt draw_blinding(const PublicKey& pk, bn::Rng64& rng) {
  for (;;) {
    bn::BigInt s = bn::random_unit(rng, pk.n);
    if (s != bn::BigInt(1)) return s;
  }
}

void validate_proof(const PublicKey& pk, const Proof& proof) {
  if (proof.p.sign() <= 0 || proof.p >= pk.n) {
    throw ProtocolError("proof value out of range [1, N)");
  }
  if (bn::gcd(proof.p, pk.n) != bn::BigInt(1)) {
    throw ProtocolError("proof value is not a unit mod N");
  }
}

}  // namespace ice::proto
