#include "ice/protocol.h"

#include "bignum/montgomery.h"
#include "common/error.h"
#include "crypto/prf.h"

namespace ice::proto {

Challenge make_challenge(const PublicKey& pk, const ProtocolParams& params,
                         bn::Rng64& rng, ChallengeSecret& secret_out) {
  Challenge chal;
  // e in [1, 2^kappa - 1]: nonzero so the PRF key is never degenerate.
  do {
    chal.e = bn::random_below(rng, bn::BigInt(1)
                                       << params.challenge_key_bits);
  } while (chal.e.is_zero());
  secret_out.s = bn::random_unit(rng, pk.n);
  chal.g_s = bn::Montgomery(pk.n).pow(pk.g, secret_out.s);
  return chal;
}

Proof make_proof(const PublicKey& pk, const ProtocolParams& params,
                 const std::vector<Bytes>& blocks, const Challenge& challenge,
                 const bn::BigInt& s_tilde) {
  if (blocks.empty()) throw ParamError("make_proof: no blocks to prove");
  if (s_tilde.is_zero()) throw ParamError("make_proof: zero blinding");
  crypto::CoefficientPrf prf(challenge.e, params.coeff_bits);
  // Aggregate over the integers: sum_k a_k * m_k, then one modexp. The cost
  // profile the paper reports in Fig. 6 (flat in |S_j|, linear in block
  // size) comes exactly from this shape.
  bn::BigInt aggregate(0);
  for (const auto& block : blocks) {
    aggregate += prf.next() * bn::BigInt::from_bytes_be(block);
  }
  Proof proof;
  proof.p = bn::Montgomery(pk.n).pow(challenge.g_s, aggregate * s_tilde);
  return proof;
}

std::vector<bn::BigInt> repack_tags(const PublicKey& pk,
                                    const std::vector<bn::BigInt>& tags,
                                    const bn::BigInt& s_tilde) {
  const bn::Montgomery mont(pk.n);
  std::vector<bn::BigInt> out;
  out.reserve(tags.size());
  for (const auto& t : tags) out.push_back(mont.pow(t, s_tilde));
  return out;
}

bool verify_proof(const PublicKey& pk, const ProtocolParams& params,
                  const std::vector<bn::BigInt>& repacked_tags,
                  const Challenge& challenge, const ChallengeSecret& secret,
                  const Proof& proof) {
  if (repacked_tags.empty()) {
    throw ParamError("verify_proof: no tags to verify against");
  }
  const bn::Montgomery mont(pk.n);
  crypto::CoefficientPrf prf(challenge.e, params.coeff_bits);
  // R = prod_k T~_k^{a_k} mod N.
  bn::BigInt r(1);
  for (const auto& t : repacked_tags) {
    r = mont.mul(r, mont.pow(t, prf.next()));
  }
  const bn::BigInt expected = mont.pow(r, secret.s);
  return expected == proof.p.mod(pk.n);
}

bn::BigInt draw_blinding(const PublicKey& pk, bn::Rng64& rng) {
  for (;;) {
    bn::BigInt s = bn::random_unit(rng, pk.n);
    if (s != bn::BigInt(1)) return s;
  }
}

}  // namespace ice::proto
