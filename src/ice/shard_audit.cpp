#include "ice/shard_audit.h"

#include <utility>

#include "common/error.h"

namespace ice::proto {

ShardPlanner::ShardPlanner(pir::ShardMap map, std::size_t tag_bits)
    : map_(std::move(map)), tag_bits_(tag_bits) {
  embeddings_.reserve(map_.num_shards());
  clients_.reserve(map_.num_shards());
  for (const pir::ShardRange& r : map_.ranges()) {
    // Empty shards get a 1-point placeholder embedding; shard_of never
    // routes an index to them, so their client is never exercised.
    embeddings_.push_back(
        std::make_unique<pir::Embedding>(r.size() == 0 ? 1 : r.size()));
    clients_.push_back(
        std::make_unique<pir::PirClient>(*embeddings_.back(), tag_bits_));
  }
}

ShardPlan ShardPlanner::plan(std::span<const std::size_t> indices,
                             bn::Rng64& rng) const {
  // Group by shard, preserving request order within each shard. Touched
  // shards are visited in ascending id so the encode (and its RNG draws)
  // is canonical — with one shard this is exactly the legacy encode.
  std::vector<std::vector<std::size_t>> local(map_.num_shards());
  std::vector<std::vector<std::size_t>> origin(map_.num_shards());
  for (std::size_t pos = 0; pos < indices.size(); ++pos) {
    const std::size_t s = map_.shard_of(indices[pos]);  // validates range
    local[s].push_back(indices[pos] - map_.range(s).begin);
    origin[s].push_back(pos);
  }

  ShardPlan out;
  for (auto& q : out.queries) q.epoch = map_.epoch();
  for (std::size_t s = 0; s < map_.num_shards(); ++s) {
    if (local[s].empty()) continue;
    auto enc = clients_[s]->encode(local[s], rng);
    for (std::size_t tau = 0; tau < pir::PirClient::kNumServers; ++tau) {
      out.queries[tau].shards.push_back(
          {static_cast<std::uint32_t>(s), std::move(enc.queries[tau])});
    }
    out.secrets.push_back(std::move(enc.secrets));
    out.origins.push_back(std::move(origin[s]));
  }
  return out;
}

std::vector<bn::BigInt> ShardPlanner::merge_decode(
    const ShardPlan& plan, const pir::ShardedPirResponse& r0,
    const pir::ShardedPirResponse& r1) const {
  const std::size_t slots = plan.secrets.size();
  if (r0.shards.size() != slots || r1.shards.size() != slots) {
    throw ProtocolError("merge_decode: response shard count mismatch");
  }
  std::vector<bn::BigInt> out(plan.total_points());
  for (std::size_t k = 0; k < slots; ++k) {
    const std::uint32_t shard = plan.queries[0].shards[k].shard;
    if (r0.shards[k].shard != shard || r1.shards[k].shard != shard) {
      throw ProtocolError("merge_decode: response shard id mismatch");
    }
    std::vector<bn::BigInt> tags = clients_[shard]->decode(
        plan.secrets[k], r0.shards[k].response, r1.shards[k].response);
    const std::vector<std::size_t>& origin = plan.origins[k];
    if (tags.size() != origin.size()) {
      throw ProtocolError("merge_decode: partial response size mismatch");
    }
    for (std::size_t i = 0; i < tags.size(); ++i) {
      out[origin[i]] = std::move(tags[i]);
    }
  }
  return out;
}

std::vector<bn::BigInt> retrieve_tags_sharded(
    const pir::ShardedTagServer& tpa0, const pir::ShardedTagServer& tpa1,
    std::span<const std::size_t> indices, bn::Rng64& rng) {
  if (tpa0.epoch() != tpa1.epoch() || tpa0.n() != tpa1.n() ||
      tpa0.tag_bits() != tpa1.tag_bits()) {
    throw ParamError("retrieve_tags_sharded: TPA replicas disagree");
  }
  const ShardPlanner planner(tpa0.map_snapshot(), tpa0.tag_bits());
  ShardPlan plan = planner.plan(indices, rng);
  if (plan.secrets.empty()) return {};
  pir::ShardedPirResponse r0;
  pir::ShardedPirResponse r1;
  tpa0.respond_sharded(plan.queries[0], r0);
  tpa1.respond_sharded(plan.queries[1], r1);
  return planner.merge_decode(plan, r0, r1);
}

}  // namespace ice::proto
