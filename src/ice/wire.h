// RPC method numbering and message codecs for the ICE entities.
//
// Responses carry the status envelope (net/dispatch.h): a u16 status code,
// then the reply on kOk or a reason string otherwise, so remote failures
// surface as typed RemoteError at the caller instead of killing the
// transport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bignum/bigint.h"
#include "common/bytes.h"
#include "ice/protocol.h"
#include "net/dispatch.h"
#include "net/serde.h"
#include "pir/messages.h"
#include "pir/shard_map.h"

namespace ice::proto {

enum Method : std::uint16_t {
  // CSP service
  kCspInfo = 100,       // () -> (n, block_size)
  kCspFetch = 101,      // (index) -> (block)
  kCspWriteBack = 102,  // ([index, block]...) -> ()
  kCspSetKey = 103,     // (N, g, coeff_bits, key_bits) -> ()
  kCspChallenge = 104,  // (e, g_s, [index]...) -> (proof); sampled PDP

  // Edge service
  kEdgeRead = 200,            // (index) -> (block); fetches from CSP on miss
  kEdgeWrite = 201,           // (index, block) -> (); dirty write
  kEdgeIndexQuery = 202,      // () -> sorted S_j   [paper IndexQuery]
  kEdgeShareBlind = 203,      // (session_id, s~) -> ()
  kEdgeChallenge = 204,       // (session_id, e, g_s) -> (proof)
  kEdgeBatchChallenge = 205,  // (batch_id, e_j, g_s) -> (); proof goes to TPA
  kEdgeFlush = 206,           // () -> (blocks written back)
  kEdgeSubsetProof = 207,     // (e, g_s, [index]...) -> (proof); owner-driven
                              // subset challenge used by localization

  // TPA service
  kTpaSetKey = 300,         // (N, g, coeff_bits, key_bits) -> ()
  kTpaStoreTags = 301,      // ([tag]...) -> ()
  kTpaTagQuery = 302,       // (gamma, [point]...) -> PIR response
  kTpaStartAudit = 303,     // (edge_id, session_id) -> ()
  kTpaSubmitRepacked = 304, // (session_id, [tag]...) -> (verdict)
  kTpaBatchBegin = 305,     // (batch_id, num_edges) -> (g_s)
  kTpaSubmitProof = 306,    // (batch_id, proof) -> ()
  kTpaBatchFinish = 307,    // (batch_id, [tag]...) -> (verdict)
  kTpaUpdateTag = 308,      // (index, tag) -> (epoch); stages into
                            // the next epoch (data dynamics)
  kTpaShardMap = 309,       // () -> (epoch, [shard size]...)
  kTpaShardQuery = 310,     // ShardedPirQuery -> ShardedPirResponse;
                            // stale epoch -> kFailedPrecondition
  kTpaSplitShard = 311,     // (shard) -> (epoch); operator rebalance
  kTpaAppendTag = 312,      // (tag) -> (index, epoch); new outsourced block
  kTpaCloseEpoch = 313,     // (force u8) -> (closed u8, epoch, rows merged);
                            // merges staged updates (DESIGN.md §15)
};

// Client stubs unwrap responses with net::unwrap (net/dispatch.h), which
// throws net::RemoteError on an error envelope.
using net::unwrap;

/// GF(4) vector list codec shared by PIR queries/responses.
void write_gf4_vector(net::Writer& w, const gf::GF4Vector& v);
gf::GF4Vector read_gf4_vector(net::Reader& r);

void write_pir_query(net::Writer& w, const pir::PirQuery& q);
pir::PirQuery read_pir_query(net::Reader& r);
void write_pir_response(net::Writer& w, const pir::PirResponse& resp);
pir::PirResponse read_pir_response(net::Reader& r);

/// Shard map wire form: epoch + per-shard sizes (pir::ShardMap::from_sizes
/// reconstructs the range table on the client).
void write_shard_map(net::Writer& w, const pir::ShardMap& map);
pir::ShardMap read_shard_map(net::Reader& r);

void write_sharded_query(net::Writer& w, const pir::ShardedPirQuery& q);
pir::ShardedPirQuery read_sharded_query(net::Reader& r);
void write_sharded_response(net::Writer& w,
                            const pir::ShardedPirResponse& resp);
pir::ShardedPirResponse read_sharded_response(net::Reader& r);

void write_bigint_list(net::Writer& w, const std::vector<bn::BigInt>& v);
std::vector<bn::BigInt> read_bigint_list(net::Reader& r);

void write_index_list(net::Writer& w, const std::vector<std::size_t>& v);
std::vector<std::size_t> read_index_list(net::Reader& r);

}  // namespace ice::proto
