#include "ice/edge_service.h"

#include "common/error.h"
#include "ice/batch.h"
#include "ice/csp_service.h"
#include "ice/wire.h"

namespace ice::proto {

EdgeService::EdgeService(std::uint32_t edge_id, const ProtocolParams& params,
                         PublicKey pk, mec::EdgeCache cache,
                         net::RpcChannel& csp, net::RpcChannel* tpa)
    : edge_id_(edge_id),
      params_(params),
      pk_(std::move(pk)),
      cache_(std::move(cache)),
      csp_(&csp),
      tpa_(tpa) {}

Bytes EdgeService::handle(std::uint16_t method, BytesView request) {
  try {
    std::function<void()> deferred;
    Bytes response;
    {
      std::lock_guard lock(mu_);
      net::Reader r(request);
      response = handle_locked(method, r, deferred);
    }
    // Outbound proof submission runs without mu_ held (see handle_locked's
    // doc comment); a failure still surfaces as this call's error response.
    if (deferred) deferred();
    return response;
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

Bytes EdgeService::fetch_from_csp(std::size_t index) {
  const Bytes block = CspClient(*csp_).fetch(index);
  cache_.admit(index, block);
  return block;
}

std::vector<Bytes> EdgeService::cached_blocks_ordered() {
  std::vector<Bytes> blocks;
  for (std::size_t index : cache_.cached_indices()) {
    blocks.push_back(*cache_.get(index));
  }
  return blocks;
}

Bytes EdgeService::handle_locked(std::uint16_t method, net::Reader& r,
                                 std::function<void()>& deferred) {
  switch (method) {
    case kEdgeRead: {
      const auto index = static_cast<std::size_t>(r.varint());
      r.expect_done();
      auto cached = cache_.get(index);
      const Bytes block = cached ? std::move(*cached)
                                 : fetch_from_csp(index);
      net::Writer w;
      w.bytes(block);
      return ok_response(std::move(w));
    }
    case kEdgeWrite: {
      const auto index = static_cast<std::size_t>(r.varint());
      Bytes data = r.bytes();
      r.expect_done();
      if (!cache_.contains(index)) {
        (void)fetch_from_csp(index);  // write-allocate
      }
      cache_.write(index, std::move(data));
      return ok_empty();
    }
    case kEdgeIndexQuery: {
      r.expect_done();
      net::Writer w;
      write_index_list(w, cache_.cached_indices());
      return ok_response(std::move(w));
    }
    case kEdgeShareBlind: {
      const std::uint64_t session = r.u64();
      bn::BigInt s_tilde = r.bigint();
      r.expect_done();
      if (s_tilde.is_zero()) {
        return error_response("EdgeService: zero blinding");
      }
      session_blindings_[session] = std::move(s_tilde);
      return ok_empty();
    }
    case kEdgeChallenge: {
      const std::uint64_t session = r.u64();
      Challenge chal;
      chal.e = r.bigint();
      chal.g_s = r.bigint();
      r.expect_done();
      const auto it = session_blindings_.find(session);
      if (it == session_blindings_.end()) {
        return error_response("EdgeService: no blinding for session");
      }
      const Proof proof =
          make_proof(pk_, params_, cached_blocks_ordered(), chal, it->second);
      session_blindings_.erase(it);  // one-shot
      net::Writer w;
      w.bigint(proof.p);
      return ok_response(std::move(w));
    }
    case kEdgeBatchChallenge: {
      const std::uint64_t batch_id = r.u64();
      const bn::BigInt e_j = r.bigint();
      const bn::BigInt g_s = r.bigint();
      r.expect_done();
      if (tpa_ == nullptr) {
        return error_response("EdgeService: no TPA channel for batch");
      }
      const Proof proof =
          make_batch_proof(pk_, params_, cached_blocks_ordered(), e_j, g_s);
      net::Writer w;
      w.u64(batch_id);
      w.bigint(proof.p);
      // The proof only depends on state captured above, so the TPA
      // submission is deferred past our own lock — the TPA challenges
      // edges while holding ITS lock, and the two orders must not cross.
      deferred = [this, payload = w.take()] {
        const Bytes raw = tpa_->call(kTpaSubmitProof, payload);
        unwrap(raw);
      };
      return ok_empty();
    }
    case kEdgeSubsetProof: {
      const bn::BigInt e = r.bigint();
      const bn::BigInt g_s = r.bigint();
      const std::vector<std::size_t> subset = read_index_list(r);
      r.expect_done();
      std::vector<Bytes> blocks;
      blocks.reserve(subset.size());
      for (std::size_t index : subset) {
        auto cached = cache_.get(index);
        if (!cached) {
          return error_response("EdgeService: subset block not cached");
        }
        blocks.push_back(std::move(*cached));
      }
      // Owner-driven challenge: the data owner verifies with its own s, so
      // no session blinding is involved (make_batch_proof has exactly the
      // unblinded shape needed).
      const Proof proof = make_batch_proof(pk_, params_, blocks, e, g_s);
      net::Writer w;
      w.bigint(proof.p);
      return ok_response(std::move(w));
    }
    case kEdgeFlush: {
      r.expect_done();
      auto dirty = cache_.flush();
      CspClient(*csp_).write_back(dirty);
      net::Writer w;
      w.varint(dirty.size());
      return ok_response(std::move(w));
    }
    default:
      return error_response("EdgeService: unknown method");
  }
}

void EdgeService::pre_download(const std::vector<std::size_t>& indices) {
  std::lock_guard lock(mu_);
  for (std::size_t index : indices) {
    if (!cache_.contains(index)) (void)fetch_from_csp(index);
  }
}

Bytes EdgeClient::read(std::size_t index) const {
  net::Writer w;
  w.varint(index);
  const Bytes raw = channel_->call(kEdgeRead, w.take());
  net::Reader r = unwrap(raw);
  return r.bytes();
}

void EdgeClient::write(std::size_t index, BytesView data) const {
  net::Writer w;
  w.varint(index);
  w.bytes(data);
  const Bytes raw = channel_->call(kEdgeWrite, w.take());
  unwrap(raw);
}

std::vector<std::size_t> EdgeClient::index_query() const {
  const Bytes raw = channel_->call(kEdgeIndexQuery, {});
  net::Reader r = unwrap(raw);
  return read_index_list(r);
}

void EdgeClient::share_blinding(std::uint64_t session_id,
                                const bn::BigInt& s_tilde) const {
  net::Writer w;
  w.u64(session_id);
  w.bigint(s_tilde);
  const Bytes raw = channel_->call(kEdgeShareBlind, w.take());
  unwrap(raw);
}

Proof EdgeClient::challenge(std::uint64_t session_id,
                            const Challenge& chal) const {
  net::Writer w;
  w.u64(session_id);
  w.bigint(chal.e);
  w.bigint(chal.g_s);
  const Bytes raw = channel_->call(kEdgeChallenge, w.take());
  net::Reader r = unwrap(raw);
  Proof proof;
  proof.p = r.bigint();
  return proof;
}

void EdgeClient::batch_challenge(std::uint64_t batch_id, const bn::BigInt& e_j,
                                 const bn::BigInt& g_s) const {
  net::Writer w;
  w.u64(batch_id);
  w.bigint(e_j);
  w.bigint(g_s);
  const Bytes raw = channel_->call(kEdgeBatchChallenge, w.take());
  unwrap(raw);
}

Proof EdgeClient::subset_proof(const bn::BigInt& e, const bn::BigInt& g_s,
                               const std::vector<std::size_t>& subset) const {
  net::Writer w;
  w.bigint(e);
  w.bigint(g_s);
  write_index_list(w, subset);
  const Bytes raw = channel_->call(kEdgeSubsetProof, w.take());
  net::Reader r = unwrap(raw);
  Proof proof;
  proof.p = r.bigint();
  return proof;
}

std::size_t EdgeClient::flush() const {
  const Bytes raw = channel_->call(kEdgeFlush, {});
  net::Reader r = unwrap(raw);
  return static_cast<std::size_t>(r.varint());
}

}  // namespace ice::proto
