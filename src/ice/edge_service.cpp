#include "ice/edge_service.h"

#include "common/error.h"
#include "ice/batch.h"
#include "ice/csp_service.h"
#include "ice/wire.h"

namespace ice::proto {

using net::ServiceError;
using net::Status;

EdgeService::EdgeService(std::uint32_t edge_id, const ProtocolParams& params,
                         PublicKey pk, mec::EdgeCache cache,
                         net::RpcChannel& csp, net::RpcChannel* tpa)
    : edge_id_(edge_id),
      params_(params),
      pk_(std::move(pk)),
      csp_(&csp),
      tpa_(tpa),
      dispatch_("EdgeService"),
      cache_(std::move(cache)),
      blindings_(session_table_config()) {
  const auto bind = [this](void (EdgeService::*fn)(net::Reader&,
                                                   net::Writer&)) {
    return [this, fn](net::Reader& r, net::Writer& w) { (this->*fn)(r, w); };
  };
  dispatch_.on(kEdgeRead, "read", bind(&EdgeService::on_read));
  dispatch_.on(kEdgeWrite, "write", bind(&EdgeService::on_write));
  dispatch_.on(kEdgeIndexQuery, "index_query",
               bind(&EdgeService::on_index_query));
  dispatch_.on(kEdgeShareBlind, "share_blinding",
               bind(&EdgeService::on_share_blind));
  dispatch_.on(kEdgeChallenge, "challenge", bind(&EdgeService::on_challenge));
  dispatch_.on(kEdgeBatchChallenge, "batch_challenge",
               bind(&EdgeService::on_batch_challenge));
  dispatch_.on(kEdgeSubsetProof, "subset_proof",
               bind(&EdgeService::on_subset_proof));
  dispatch_.on(kEdgeFlush, "flush", bind(&EdgeService::on_flush));
}

Bytes EdgeService::handle(std::uint16_t method, BytesView request) {
  return dispatch_.handle(method, request);
}

Bytes EdgeService::fetch_and_admit(std::size_t index) {
  // The CSP round trip runs with no lock held; only the admit re-locks.
  Bytes block = CspClient(*csp_).fetch(index);
  std::lock_guard lock(cache_mu_);
  if (!cache_.contains(index)) {
    cache_.admit(index, block);
  }
  return block;
}

std::vector<Bytes> EdgeService::cached_blocks_ordered_locked() {
  std::vector<Bytes> blocks;
  for (std::size_t index : cache_.cached_indices()) {
    blocks.push_back(*cache_.get(index));
  }
  return blocks;
}

std::vector<Bytes> EdgeService::snapshot_blocks() {
  std::lock_guard lock(cache_mu_);
  return cached_blocks_ordered_locked();
}

void EdgeService::on_read(net::Reader& r, net::Writer& w) {
  const auto index = static_cast<std::size_t>(r.varint());
  {
    std::lock_guard lock(cache_mu_);
    if (auto cached = cache_.get(index)) {
      w.bytes(*cached);
      return;
    }
  }
  w.bytes(fetch_and_admit(index));
}

void EdgeService::on_write(net::Reader& r, net::Writer&) {
  const auto index = static_cast<std::size_t>(r.varint());
  Bytes data = r.bytes();
  {
    std::lock_guard lock(cache_mu_);
    if (cache_.contains(index)) {
      cache_.write(index, std::move(data));
      return;
    }
  }
  (void)fetch_and_admit(index);  // write-allocate
  std::lock_guard lock(cache_mu_);
  cache_.write(index, std::move(data));
}

void EdgeService::on_index_query(net::Reader&, net::Writer& w) {
  std::lock_guard lock(cache_mu_);
  write_index_list(w, cache_.cached_indices());
}

void EdgeService::on_share_blind(net::Reader& r, net::Writer&) {
  const std::uint64_t session = r.u64();
  bn::BigInt s_tilde = r.bigint();
  if (s_tilde.is_zero()) {
    throw ServiceError(Status::kInvalidArgument, "zero blinding");
  }
  switch (blindings_.try_emplace(session,
                                 BlindingSession{std::move(s_tilde)})) {
    case SessionTable<BlindingSession>::Insert::kExists:
      throw ServiceError(Status::kAlreadyExists,
                         "blinding already shared for session");
    case SessionTable<BlindingSession>::Insert::kFull:
      throw ServiceError(Status::kResourceExhausted,
                         "too many pending blindings");
    case SessionTable<BlindingSession>::Insert::kInserted:
      break;
  }
}

void EdgeService::on_challenge(net::Reader& r, net::Writer& w) {
  const std::uint64_t session = r.u64();
  Challenge chal;
  chal.e = r.bigint();
  chal.g_s = r.bigint();
  r.expect_done();
  auto blinding = blindings_.extract(session);  // one-shot
  if (!blinding) {
    throw ServiceError(Status::kNotFound, "no blinding for session");
  }
  // Snapshot the cache, then compute the proof with no lock held.
  const std::vector<Bytes> blocks = snapshot_blocks();
  const Proof proof =
      make_proof(pk_, params_, blocks, chal, blinding->s_tilde);
  w.bigint(proof.p);
}

void EdgeService::on_batch_challenge(net::Reader& r, net::Writer&) {
  const std::uint64_t batch_id = r.u64();
  const bn::BigInt e_j = r.bigint();
  const bn::BigInt g_s = r.bigint();
  r.expect_done();
  if (tpa_ == nullptr) {
    throw ServiceError(Status::kFailedPrecondition,
                       "no TPA channel for batch");
  }
  const std::vector<Bytes> blocks = snapshot_blocks();
  const Proof proof = make_batch_proof(pk_, params_, blocks, e_j, g_s);
  // Submit to the TPA with no lock held; a rejection surfaces as this
  // call's error response.
  net::Writer submit;
  submit.u64(batch_id);
  submit.bigint(proof.p);
  const Bytes raw = tpa_->call(kTpaSubmitProof, submit.take());
  unwrap(raw);
}

void EdgeService::on_subset_proof(net::Reader& r, net::Writer& w) {
  const bn::BigInt e = r.bigint();
  const bn::BigInt g_s = r.bigint();
  const std::vector<std::size_t> subset = read_index_list(r);
  std::vector<Bytes> blocks;
  blocks.reserve(subset.size());
  {
    std::lock_guard lock(cache_mu_);
    for (std::size_t index : subset) {
      auto cached = cache_.get(index);
      if (!cached) {
        throw ServiceError(Status::kNotFound, "subset block not cached");
      }
      blocks.push_back(std::move(*cached));
    }
  }
  // Owner-driven challenge: the data owner verifies with its own s, so
  // no session blinding is involved (make_batch_proof has exactly the
  // unblinded shape needed).
  const Proof proof = make_batch_proof(pk_, params_, blocks, e, g_s);
  w.bigint(proof.p);
}

void EdgeService::on_flush(net::Reader&, net::Writer& w) {
  std::vector<std::pair<std::size_t, Bytes>> dirty;
  {
    std::lock_guard lock(cache_mu_);
    dirty = cache_.flush();
  }
  // Write-back leaves for the CSP with no lock held.
  CspClient(*csp_).write_back(dirty);
  w.varint(dirty.size());
}

void EdgeService::pre_download(const std::vector<std::size_t>& indices) {
  for (std::size_t index : indices) {
    bool have = false;
    {
      std::lock_guard lock(cache_mu_);
      have = cache_.contains(index);
    }
    if (!have) (void)fetch_and_admit(index);
  }
}

Bytes EdgeClient::read(std::size_t index) const {
  net::Writer w;
  w.varint(index);
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeRead, std::move(w));
  net::Reader r = unwrap(raw);
  return r.bytes();
}

void EdgeClient::write(std::size_t index, BytesView data) const {
  net::Writer w;
  w.varint(index);
  w.bytes(data);
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeWrite, std::move(w));
  unwrap(raw);
}

std::vector<std::size_t> EdgeClient::index_query() const {
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeIndexQuery);
  net::Reader r = unwrap(raw);
  return read_index_list(r);
}

void EdgeClient::share_blinding(std::uint64_t session_id,
                                const bn::BigInt& s_tilde) const {
  net::Writer w;
  w.u64(session_id);
  w.bigint(s_tilde);
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeShareBlind, std::move(w));
  unwrap(raw);
}

Proof EdgeClient::challenge(std::uint64_t session_id,
                            const Challenge& chal) const {
  net::Writer w;
  w.u64(session_id);
  w.bigint(chal.e);
  w.bigint(chal.g_s);
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeChallenge, std::move(w));
  net::Reader r = unwrap(raw);
  Proof proof;
  proof.p = r.bigint();
  return proof;
}

void EdgeClient::batch_challenge(std::uint64_t batch_id, const bn::BigInt& e_j,
                                 const bn::BigInt& g_s) const {
  net::Writer w;
  w.u64(batch_id);
  w.bigint(e_j);
  w.bigint(g_s);
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeBatchChallenge, std::move(w));
  unwrap(raw);
}

Proof EdgeClient::subset_proof(const bn::BigInt& e, const bn::BigInt& g_s,
                               const std::vector<std::size_t>& subset) const {
  net::Writer w;
  w.bigint(e);
  w.bigint(g_s);
  write_index_list(w, subset);
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeSubsetProof, std::move(w));
  net::Reader r = unwrap(raw);
  Proof proof;
  proof.p = r.bigint();
  return proof;
}

std::size_t EdgeClient::flush() const {
  const net::PooledBytes raw = net::call_pooled(*channel_, kEdgeFlush);
  net::Reader r = unwrap(raw);
  return static_cast<std::size_t>(r.varint());
}

}  // namespace ice::proto
