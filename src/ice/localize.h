// Corruption localization.
//
// A failed audit says "at least one cached block is bad" but not which.
// Because the data owner holds the true tags (privately retrieved during
// the failed round), it can challenge the edge itself on SUBSETS of S_j and
// bisect: a passing subset is clean, a failing singleton is corrupted.
// Cost: O(k log |S_j|) subset proofs to localize k corrupted blocks — far
// cheaper than re-downloading the cache when k is small, and each proof is
// one edge modexp.
//
// This runs user<->edge only (the fast local link); the TPA is not
// involved, and no new information is revealed to anyone.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/random.h"
#include "ice/edge_service.h"
#include "ice/keys.h"
#include "ice/params.h"

namespace ice::proto {

struct LocalizationResult {
  /// Block indexes whose proofs failed at singleton level, plus indexes the
  /// edge no longer holds at all. Sorted.
  std::vector<std::size_t> corrupted;
  /// How many subset proofs the edge produced (cost metric).
  std::size_t proofs_requested = 0;
};

/// Bisects `indices` (with their true `tags`, aligned) against the edge.
/// The caller obtained tags via private retrieval; this function talks to
/// the edge through `edge` only.
LocalizationResult localize_corruption(const PublicKey& pk,
                                       const ProtocolParams& params,
                                       const EdgeClient& edge,
                                       const std::vector<std::size_t>&
                                           indices,
                                       const std::vector<bn::BigInt>& tags,
                                       bn::Rng64& rng);

}  // namespace ice::proto
