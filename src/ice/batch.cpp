#include "ice/batch.h"

#include <algorithm>
#include <map>

#include "bignum/fixed_base.h"
#include "bignum/montgomery.h"
#include "bignum/multiexp.h"
#include "common/error.h"
#include "common/parallel.h"
#include "crypto/prf.h"

namespace ice::proto {

Challenge make_batch_base(const PublicKey& pk, bn::Rng64& rng,
                          ChallengeSecret& secret_out) {
  Challenge base;
  secret_out.s = bn::random_unit(rng, pk.n);
  // g is long-lived: every batch round reuses the cached Lim-Lee comb.
  const auto mont = bn::Montgomery::shared(pk.n);
  base.g_s = mont->fixed_base(pk.g, pk.n.bit_length())->pow(secret_out.s);
  base.e = bn::BigInt(0);  // per-edge keys live with the user in ICE-batch
  return base;
}

std::vector<bn::BigInt> draw_challenge_keys(const ProtocolParams& params,
                                            std::size_t edges,
                                            bn::Rng64& rng) {
  if (edges == 0) throw ParamError("draw_challenge_keys: no edges");
  std::vector<bn::BigInt> keys;
  keys.reserve(edges);
  const bn::BigInt bound = bn::BigInt(1) << params.challenge_key_bits;
  for (std::size_t j = 0; j < edges; ++j) {
    bn::BigInt e;
    do {
      e = bn::random_below(rng, bound);
    } while (e.is_zero());
    keys.push_back(std::move(e));
  }
  return keys;
}

Proof make_batch_proof(const PublicKey& pk, const ProtocolParams& params,
                       const std::vector<Bytes>& blocks, const bn::BigInt& e_j,
                       const bn::BigInt& g_s) {
  if (blocks.empty()) throw ParamError("make_batch_proof: no blocks");
  // Same chunked-aggregation scheme as make_proof: expand the sequential
  // coefficient stream once, sum a_k * m_k per chunk, add partials in chunk
  // order (exact integer addition — bit-identical at every thread count),
  // then one modexp.
  const std::vector<bn::BigInt> coeffs =
      crypto::CoefficientPrf::expand(e_j, params.coeff_bits, blocks.size());
  std::vector<bn::BigInt> partials(
      chunk_count(blocks.size(), resolve_parallelism(params.parallelism)));
  parallel_chunks(blocks.size(), params.parallelism,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    bn::BigInt sum(0);
                    for (std::size_t k = begin; k < end; ++k) {
                      sum += coeffs[k] * bn::BigInt::from_bytes_be(blocks[k]);
                    }
                    partials[chunk] = std::move(sum);
                  });
  bn::BigInt aggregate(0);
  for (const auto& partial : partials) aggregate += partial;
  Proof proof;
  // g_s is round-fresh, so no comb; the shared context still saves the
  // per-call R^2 / n0inv derivation.
  proof.p = bn::Montgomery::shared(pk.n)->pow(g_s, aggregate);
  return proof;
}

std::vector<Proof> make_batch_proofs(
    const PublicKey& pk, const ProtocolParams& params,
    const std::vector<std::vector<Bytes>>& edge_blocks,
    const std::vector<bn::BigInt>& challenge_keys, const bn::BigInt& g_s) {
  if (edge_blocks.size() != challenge_keys.size()) {
    throw ParamError("make_batch_proofs: blocks/keys size mismatch");
  }
  std::vector<Proof> proofs(edge_blocks.size());
  // One task per edge (chunks of the edge range); the nested per-proof
  // parallel_chunks calls detect they are on pool workers and run inline.
  parallel_chunks(edge_blocks.size(), params.parallelism,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t j = begin; j < end; ++j) {
                      proofs[j] = make_batch_proof(pk, params, edge_blocks[j],
                                                   challenge_keys[j], g_s);
                    }
                  });
  return proofs;
}

std::vector<std::size_t> union_of_sets(
    const std::vector<std::vector<std::size_t>>& edge_sets) {
  std::vector<std::size_t> u;
  for (const auto& s : edge_sets) u.insert(u.end(), s.begin(), s.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

std::vector<bn::BigInt> batch_repack(
    const PublicKey& pk, const ProtocolParams& params,
    const std::vector<std::size_t>& union_indices,
    const std::vector<bn::BigInt>& union_tags,
    const std::vector<std::vector<std::size_t>>& edge_sets,
    const std::vector<bn::BigInt>& challenge_keys) {
  if (union_indices.size() != union_tags.size()) {
    throw ParamError("batch_repack: indices/tags size mismatch");
  }
  if (edge_sets.size() != challenge_keys.size()) {
    throw ParamError("batch_repack: edge_sets/keys size mismatch");
  }
  // Aggregated exponent per union block: sum over edges holding it of that
  // edge's coefficient at the block's position within S_j.
  std::map<std::size_t, bn::BigInt> aggregate;
  for (std::size_t j = 0; j < edge_sets.size(); ++j) {
    crypto::CoefficientPrf prf(challenge_keys[j], params.coeff_bits);
    for (std::size_t k : edge_sets[j]) {
      const bn::BigInt a = prf.next();
      auto [it, inserted] = aggregate.try_emplace(k, a);
      if (!inserted) it->second += a;
    }
  }
  const auto mont = bn::Montgomery::shared(pk.n);
  // Resolve each union index's aggregated exponent up front (and validate),
  // then fan the independent modexps out into disjoint output slots.
  std::vector<const bn::BigInt*> exponents(union_indices.size());
  for (std::size_t i = 0; i < union_indices.size(); ++i) {
    const auto it = aggregate.find(union_indices[i]);
    if (it == aggregate.end()) {
      throw ParamError("batch_repack: union index not covered by any edge");
    }
    exponents[i] = &it->second;
  }
  if (aggregate.size() != union_indices.size()) {
    throw ParamError("batch_repack: edge sets mention non-union indices");
  }
  std::vector<bn::BigInt> repacked(union_indices.size());
  parallel_chunks(union_indices.size(), params.parallelism,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      repacked[i] = mont->pow(union_tags[i], *exponents[i]);
                    }
                  });
  return repacked;
}

bool verify_batch(const PublicKey& pk,
                  const std::vector<bn::BigInt>& repacked_tags,
                  const std::vector<Proof>& proofs,
                  const ChallengeSecret& secret,
                  std::size_t parallelism) {
  if (repacked_tags.empty() || proofs.empty()) {
    throw ParamError("verify_batch: empty batch");
  }
  const auto mont = bn::Montgomery::shared(pk.n);
  // Exponents here are all 1, so windowed multi-exp cannot help: both
  // products run as straight Montgomery-domain chains (one conversion per
  // value, one mont_mul per step) via mont_product, which keeps the
  // chunk-ordered parallel combine bit-identical to the serial product.
  std::vector<bn::BigInt> proof_values;
  proof_values.reserve(proofs.size());
  for (const auto& proof : proofs) proof_values.push_back(proof.p);
  const bn::BigInt r = bn::mont_product(*mont, repacked_tags, parallelism);
  const bn::BigInt expected = mont->pow(r, secret.s);
  const bn::BigInt combined = bn::mont_product(*mont, proof_values, 1);
  return expected == combined;
}

}  // namespace ice::proto
