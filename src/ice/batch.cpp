#include "ice/batch.h"

#include <algorithm>
#include <map>

#include "bignum/montgomery.h"
#include "common/error.h"
#include "crypto/prf.h"

namespace ice::proto {

Challenge make_batch_base(const PublicKey& pk, bn::Rng64& rng,
                          ChallengeSecret& secret_out) {
  Challenge base;
  secret_out.s = bn::random_unit(rng, pk.n);
  base.g_s = bn::Montgomery(pk.n).pow(pk.g, secret_out.s);
  base.e = bn::BigInt(0);  // per-edge keys live with the user in ICE-batch
  return base;
}

std::vector<bn::BigInt> draw_challenge_keys(const ProtocolParams& params,
                                            std::size_t edges,
                                            bn::Rng64& rng) {
  if (edges == 0) throw ParamError("draw_challenge_keys: no edges");
  std::vector<bn::BigInt> keys;
  keys.reserve(edges);
  const bn::BigInt bound = bn::BigInt(1) << params.challenge_key_bits;
  for (std::size_t j = 0; j < edges; ++j) {
    bn::BigInt e;
    do {
      e = bn::random_below(rng, bound);
    } while (e.is_zero());
    keys.push_back(std::move(e));
  }
  return keys;
}

Proof make_batch_proof(const PublicKey& pk, const ProtocolParams& params,
                       const std::vector<Bytes>& blocks, const bn::BigInt& e_j,
                       const bn::BigInt& g_s) {
  if (blocks.empty()) throw ParamError("make_batch_proof: no blocks");
  crypto::CoefficientPrf prf(e_j, params.coeff_bits);
  bn::BigInt aggregate(0);
  for (const auto& block : blocks) {
    aggregate += prf.next() * bn::BigInt::from_bytes_be(block);
  }
  Proof proof;
  proof.p = bn::Montgomery(pk.n).pow(g_s, aggregate);
  return proof;
}

std::vector<std::size_t> union_of_sets(
    const std::vector<std::vector<std::size_t>>& edge_sets) {
  std::vector<std::size_t> u;
  for (const auto& s : edge_sets) u.insert(u.end(), s.begin(), s.end());
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

std::vector<bn::BigInt> batch_repack(
    const PublicKey& pk, const ProtocolParams& params,
    const std::vector<std::size_t>& union_indices,
    const std::vector<bn::BigInt>& union_tags,
    const std::vector<std::vector<std::size_t>>& edge_sets,
    const std::vector<bn::BigInt>& challenge_keys) {
  if (union_indices.size() != union_tags.size()) {
    throw ParamError("batch_repack: indices/tags size mismatch");
  }
  if (edge_sets.size() != challenge_keys.size()) {
    throw ParamError("batch_repack: edge_sets/keys size mismatch");
  }
  // Aggregated exponent per union block: sum over edges holding it of that
  // edge's coefficient at the block's position within S_j.
  std::map<std::size_t, bn::BigInt> aggregate;
  for (std::size_t j = 0; j < edge_sets.size(); ++j) {
    crypto::CoefficientPrf prf(challenge_keys[j], params.coeff_bits);
    for (std::size_t k : edge_sets[j]) {
      const bn::BigInt a = prf.next();
      auto [it, inserted] = aggregate.try_emplace(k, a);
      if (!inserted) it->second += a;
    }
  }
  const bn::Montgomery mont(pk.n);
  std::vector<bn::BigInt> repacked;
  repacked.reserve(union_indices.size());
  for (std::size_t i = 0; i < union_indices.size(); ++i) {
    const auto it = aggregate.find(union_indices[i]);
    if (it == aggregate.end()) {
      throw ParamError("batch_repack: union index not covered by any edge");
    }
    repacked.push_back(mont.pow(union_tags[i], it->second));
  }
  if (aggregate.size() != union_indices.size()) {
    throw ParamError("batch_repack: edge sets mention non-union indices");
  }
  return repacked;
}

bool verify_batch(const PublicKey& pk,
                  const std::vector<bn::BigInt>& repacked_tags,
                  const std::vector<Proof>& proofs,
                  const ChallengeSecret& secret) {
  if (repacked_tags.empty() || proofs.empty()) {
    throw ParamError("verify_batch: empty batch");
  }
  const bn::Montgomery mont(pk.n);
  bn::BigInt r(1);
  for (const auto& t : repacked_tags) r = mont.mul(r, t);
  const bn::BigInt expected = mont.pow(r, secret.s);
  bn::BigInt combined(1);
  for (const auto& proof : proofs) combined = mont.mul(combined, proof.p);
  return expected == combined;
}

}  // namespace ice::proto
