// Byte-buffer helpers shared by every module.
//
// `Bytes` is the canonical owned byte container in this codebase; views are
// passed as std::span<const std::uint8_t> per C++ Core Guidelines I.13/F.24.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ice {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex ("" for empty input).
std::string to_hex(BytesView data);

/// Decodes a hex string (upper or lower case, even length).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Constant-time equality for secret material (length leaks, contents do not).
bool ct_equal(BytesView a, BytesView b) noexcept;

/// Converts a string literal/body to Bytes (convenience for tests/examples).
Bytes to_bytes(std::string_view s);

}  // namespace ice
