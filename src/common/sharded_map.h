// Sharded hash map with per-shard locking and TTL eviction.
//
// The session-core building block: per-session protocol state lives here so
// independent sessions touch independent shard mutexes and a service-wide
// lock is never needed on the session path. Entries expire `ttl` after
// insertion (an abandoned audit must not leak TPA memory forever) and the
// table refuses inserts beyond `max_entries` (a hostile user must not
// exhaust it). Expired entries read as absent and are reaped lazily.
//
// Locking discipline: every operation takes exactly ONE shard mutex at a
// time (clear/purge_expired visit shards sequentially), so shard mutexes
// can never deadlock against each other. Callbacks passed to with() /
// extract_if() run under the shard lock — they must not block, and in
// particular must never perform a channel call.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ice {

/// Tuning knobs shared by all ShardedMap instantiations.
struct ShardedMapConfig {
  std::size_t shards = 16;
  std::chrono::steady_clock::duration ttl = std::chrono::minutes(10);
  std::size_t max_entries = 4096;
};

template <typename K, typename V>
class ShardedMap {
 public:
  using Clock = std::chrono::steady_clock;

  enum class Insert {
    kInserted,  // key now maps to the given value
    kExists,    // a live entry already holds this key; nothing changed
    kFull,      // table at max_entries (after reaping); nothing changed
  };

  enum class Extract {
    kExtracted,  // entry removed and returned
    kMissing,    // no live entry under this key
    kRejected,   // entry exists but the predicate said no; left in place
  };

  explicit ShardedMap(ShardedMapConfig config = {})
      : config_(config), shards_(config.shards == 0 ? 1 : config.shards) {}

  /// Inserts key -> value unless a live entry exists or the table is full.
  /// A full table is swept for expired entries once before giving up.
  Insert try_emplace(const K& key, V value) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      {
        Shard& s = shard_for(key);
        std::lock_guard lock(s.mu);
        const auto now = Clock::now();
        const auto it = s.map.find(key);
        if (it != s.map.end()) {
          if (now < it->second.deadline) return Insert::kExists;
          it->second.value = std::move(value);  // expired: reuse the slot
          it->second.deadline = now + config_.ttl;
          return Insert::kInserted;
        }
        if (size_.load(std::memory_order_relaxed) < config_.max_entries) {
          s.map.emplace(key, Entry{std::move(value), now + config_.ttl});
          size_.fetch_add(1, std::memory_order_relaxed);
          return Insert::kInserted;
        }
      }
      if (attempt == 0 && purge_expired() == 0) return Insert::kFull;
    }
    return Insert::kFull;
  }

  /// Runs fn(V&) under the shard lock; false if the key has no live entry.
  /// fn must not block (see the locking discipline above).
  template <typename Fn>
  bool with(const K& key, Fn&& fn) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    if (Clock::now() >= it->second.deadline) {
      s.map.erase(it);
      size_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    fn(it->second.value);
    return true;
  }

  /// Removes the entry and returns its value, or nullopt if absent.
  std::optional<V> extract(const K& key) {
    auto [outcome, value] = extract_if(key, [](const V&) { return true; });
    return outcome == Extract::kExtracted ? std::move(value) : std::nullopt;
  }

  /// Removes the entry only if pred(value) holds; kRejected leaves it in
  /// place so the caller can distinguish "gone" from "not ready".
  template <typename Pred>
  std::pair<Extract, std::optional<V>> extract_if(const K& key, Pred&& pred) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return {Extract::kMissing, std::nullopt};
    if (Clock::now() >= it->second.deadline) {
      s.map.erase(it);
      size_.fetch_sub(1, std::memory_order_relaxed);
      return {Extract::kMissing, std::nullopt};
    }
    if (!pred(std::as_const(it->second.value))) {
      return {Extract::kRejected, std::nullopt};
    }
    std::optional<V> value(std::move(it->second.value));
    s.map.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return {Extract::kExtracted, std::move(value)};
  }

  /// Removes the entry if present; true if something was removed.
  bool erase(const K& key) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    s.map.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Drops every entry (shard by shard; not atomic across shards).
  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      size_.fetch_sub(s.map.size(), std::memory_order_relaxed);
      s.map.clear();
    }
  }

  /// Reaps expired entries; returns how many were removed.
  std::size_t purge_expired() {
    const auto now = Clock::now();
    std::size_t purged = 0;
    for (Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        if (now >= it->second.deadline) {
          it = s.map.erase(it);
          ++purged;
        } else {
          ++it;
        }
      }
    }
    size_.fetch_sub(purged, std::memory_order_relaxed);
    return purged;
  }

  /// Live + not-yet-reaped expired entries. Exact only at quiescence; the
  /// max_entries cap is enforced against this count, so it is approximate
  /// by up to the number of concurrent inserters.
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    V value;
    Clock::time_point deadline;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<K, Entry> map;
  };

  Shard& shard_for(const K& key) {
    return shards_[std::hash<K>{}(key) % shards_.size()];
  }

  ShardedMapConfig config_;
  std::vector<Shard> shards_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace ice
