// Error types for the ICE library.
//
// Policy (CppCoreGuidelines E.2/E.3): exceptions signal violations of
// preconditions or environment failures; *expected* negative outcomes (a
// failed audit, a cache miss) are ordinary return values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace ice {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed or out-of-range protocol/crypto parameters.
class ParamError : public Error {
 public:
  using Error::Error;
};

/// Wire-format violations: truncated frames, bad tags, overflow lengths.
class CodecError : public Error {
 public:
  using Error::Error;
};

/// Transport-layer failures (socket errors, closed peers).
class TransportError : public Error {
 public:
  using Error::Error;
};

/// A protocol participant sent a message that violates the protocol state
/// machine (distinct from a *failed audit*, which is a normal result).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

}  // namespace ice
