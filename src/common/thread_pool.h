// Fixed-size thread pool.
//
// The TPA in the paper's prototype is multi-threaded ("#thread: Multiple" in
// Tab. II); the multi-user experiment (Fig. 4) measures audit latency under
// concurrent requests served by such a pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ice {

/// A fixed pool of worker threads draining a FIFO task queue.
/// Destruction waits for already-submitted tasks to finish.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) {
        throw std::logic_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of ANY ThreadPool. The
  /// chunked fan-out helpers (common/parallel.h) use this to run nested
  /// parallel regions inline: a worker that blocked on sub-tasks of a
  /// saturated pool would deadlock it.
  [[nodiscard]] static bool on_pool_thread();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ice
