// Fixed-size thread pool.
//
// The TPA in the paper's prototype is multi-threaded ("#thread: Multiple" in
// Tab. II); the multi-user experiment (Fig. 4) measures audit latency under
// concurrent requests served by such a pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ice {

/// Cooperative cancellation shared between a background producer task and
/// its owner. ThreadPool itself has no way to retract a submitted task, so
/// a long-running producer (e.g. the offline challenge refiller) polls the
/// token at its work-item boundaries and the owner's shutdown path is
/// request_stop() + wait-for-drain instead of racing the in-flight task.
class CancellationToken {
 public:
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }
  void reset() noexcept { stop_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> stop_{false};
};

/// A fixed pool of worker threads draining a FIFO task queue, plus an
/// allocation-free chunk-broadcast path (run_chunks) for the audit hot
/// loops. Destruction waits for already-submitted tasks to finish.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a callable; returns a future for its result. Allocates (shared
  /// task state + queue node); use run_chunks for allocation-free fan-out.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) {
        throw std::logic_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(chunk) for every chunk in [0, num_chunks) across the pool
  /// WITHOUT allocating: the job descriptor lives on the caller's stack,
  /// workers claim chunk indices from an atomic counter, and the caller
  /// participates until every chunk is done. Blocks until completion and
  /// rethrows the first chunk exception. If another broadcast is already in
  /// flight (the pool has one job slot), the chunks run inline on the
  /// caller — still correct, just not overlapped.
  template <typename F>
  void run_chunks(std::size_t num_chunks, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_chunks_erased(
        num_chunks,
        [](void* ctx, std::size_t chunk) { (*static_cast<Fn*>(ctx))(chunk); },
        const_cast<Fn*>(&fn));
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of ANY ThreadPool. The
  /// chunked fan-out helpers (common/parallel.h) use this to run nested
  /// parallel regions inline: a worker that blocked on sub-tasks of a
  /// saturated pool would deadlock it.
  [[nodiscard]] static bool on_pool_thread();

 private:
  /// One chunk-broadcast job. Lives on the posting thread's stack for the
  /// duration of run_chunks; workers only touch it between incrementing
  /// `entered` and `exited` (both under mu_), and the poster does not
  /// return until every enterer has exited.
  struct ChunkJob {
    void (*invoke)(void* ctx, std::size_t chunk);
    void* ctx;
    std::size_t num_chunks;
    std::atomic<std::size_t> next{0};  // next unclaimed chunk index
    std::size_t done = 0;              // executed chunks (guarded by mu_)
    std::size_t workers = 0;           // workers inside the job (mu_)
    std::exception_ptr error;          // first failure (guarded by mu_)
  };

  void run_chunks_erased(std::size_t num_chunks,
                         void (*invoke)(void*, std::size_t), void* ctx);
  /// Claims and executes chunks of `job` until none remain; returns the
  /// number executed and records the first exception in job->error.
  std::size_t drain_job(ChunkJob* job);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable job_cv_;  // poster waits for job completion
  std::deque<std::function<void()>> queue_;
  ChunkJob* job_ = nullptr;  // active broadcast, if any (guarded by mu_)
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ice
