#include "common/simd.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/error.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define ICE_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ice::simd {

namespace {

// ---------------------------------------------------------------- portable

// Unrolled by four so the independent u64 ALU ops pipeline even when the
// compiler's cost model declines to auto-vectorize a runtime trip count.
void xor_row_portable(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t w) {
  std::size_t j = 0;
  for (; j + 4 <= w; j += 4) {
    dst[j] ^= src[j];
    dst[j + 1] ^= src[j + 1];
    dst[j + 2] ^= src[j + 2];
    dst[j + 3] ^= src[j + 3];
  }
  for (; j < w; ++j) dst[j] ^= src[j];
}

void xor_row2_portable(std::uint64_t* lo, std::uint64_t* hi,
                       const std::uint64_t* src, std::size_t w,
                       std::uint8_t c) {
  const std::uint64_t ml = 0 - static_cast<std::uint64_t>(c & 1u);
  const std::uint64_t mh = 0 - static_cast<std::uint64_t>((c >> 1) & 1u);
  std::size_t j = 0;
  for (; j + 2 <= w; j += 2) {
    const std::uint64_t s0 = src[j], s1 = src[j + 1];
    lo[j] ^= s0 & ml;
    lo[j + 1] ^= s1 & ml;
    hi[j] ^= s0 & mh;
    hi[j + 1] ^= s1 & mh;
  }
  if (j < w) {
    lo[j] ^= src[j] & ml;
    hi[j] ^= src[j] & mh;
  }
}

void xor_scatter_portable(std::uint64_t* acc, const std::uint64_t* rows,
                          std::size_t w, const std::uint64_t* entries,
                          std::size_t count) {
  if (w == 16) {
    // K = 1024 fast path, run-detecting: the run extent is scanned first so
    // the fold loop has a known trip count (which keeps the local
    // accumulator in registers), then a run of entries sharing a
    // destination XORs together before the single writeback — the
    // destination's load/store round-trip is paid once per run instead of
    // once per entry, dodging the store-forward chain that dominates plain
    // read-modify-write scatter. Singleton runs skip the local accumulator
    // entirely. Arbitrary entry orderings remain correct (worst case every
    // run has length one and this is the plain scatter).
    std::size_t e = 0;
    while (e < count) {
      const std::uint32_t d = static_cast<std::uint32_t>(entries[e]);
      std::size_t f = e + 1;
      while (f < count && static_cast<std::uint32_t>(entries[f]) == d) ++f;
      std::uint64_t* const dst = acc + d;
      if (f == e + 1) {
        const std::uint64_t* const src = rows + (entries[e] >> 32);
        for (std::size_t j = 0; j < 16; ++j) dst[j] ^= src[j];
      } else {
        std::uint64_t a[16];
        for (std::size_t j = 0; j < 16; ++j) a[j] = dst[j];
        for (std::size_t x = e; x < f; ++x) {
          const std::uint64_t* const src = rows + (entries[x] >> 32);
          for (std::size_t j = 0; j < 16; ++j) a[j] ^= src[j];
        }
        for (std::size_t j = 0; j < 16; ++j) dst[j] = a[j];
      }
      e = f;
    }
    return;
  }
  for (std::size_t e = 0; e < count; ++e) {
    std::uint64_t* const dst = acc + static_cast<std::uint32_t>(entries[e]);
    const std::uint64_t* const src = rows + (entries[e] >> 32);
    for (std::size_t j = 0; j < w; ++j) dst[j] ^= src[j];
  }
}

void xor_scatter_single_portable(std::uint64_t* acc,
                                 const std::uint64_t* rows, std::size_t w,
                                 const std::uint64_t* entries,
                                 std::size_t count) {
  if (w == 16) {
    // K = 1024 fast path: a fixed trip count lets the compiler fully
    // unroll/vectorize the row XOR with the baseline ISA.
    for (std::size_t e = 0; e < count; ++e) {
      std::uint64_t* const dst = acc + static_cast<std::uint32_t>(entries[e]);
      const std::uint64_t* const src = rows + (entries[e] >> 32);
      for (std::size_t j = 0; j < 16; ++j) dst[j] ^= src[j];
    }
    return;
  }
  for (std::size_t e = 0; e < count; ++e) {
    std::uint64_t* const dst = acc + static_cast<std::uint32_t>(entries[e]);
    const std::uint64_t* const src = rows + (entries[e] >> 32);
    for (std::size_t j = 0; j < w; ++j) dst[j] ^= src[j];
  }
}

// Spreads bit i of a byte into byte i of a word — the building block of the
// portable plane-pair expansion (eight elements per table lookup pair).
constexpr std::array<std::uint64_t, 256> make_spread_table() {
  std::array<std::uint64_t, 256> t{};
  for (std::size_t b = 0; b < 256; ++b) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>((b >> i) & 1u) << (8 * i);
    }
    t[b] = v;
  }
  return t;
}
constexpr std::array<std::uint64_t, 256> kSpread = make_spread_table();

void spread_pair_portable(const std::uint64_t* lo, const std::uint64_t* hi,
                          std::size_t k, std::uint8_t* out) {
  std::size_t base = 0;
  for (std::size_t word = 0; base < k; ++word) {
    const std::uint64_t l = lo[word];
    const std::uint64_t h = hi[word];
    for (int g = 0; g < 8 && base < k; ++g) {
      const std::uint64_t bytes = kSpread[(l >> (8 * g)) & 0xFF] |
                                  (kSpread[(h >> (8 * g)) & 0xFF] << 1);
      const std::size_t take = std::min<std::size_t>(8, k - base);
      if (std::endian::native == std::endian::little && take == 8) {
        std::memcpy(out + base, &bytes, 8);
      } else {
        for (std::size_t i = 0; i < take; ++i) {
          out[base + i] = static_cast<std::uint8_t>((bytes >> (8 * i)) & 0x3);
        }
      }
      base += take;
    }
  }
}

#if defined(ICE_SIMD_X86)

// ------------------------------------------------------------------- AVX2

__attribute__((target("avx2"))) void xor_row_avx2(std::uint64_t* dst,
                                                  const std::uint64_t* src,
                                                  std::size_t w) {
  std::size_t j = 0;
  for (; j + 4 <= w; j += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j),
                        _mm256_xor_si256(d, s));
  }
  for (; j < w; ++j) dst[j] ^= src[j];
}

__attribute__((target("avx2"))) void xor_row2_avx2(std::uint64_t* lo,
                                                   std::uint64_t* hi,
                                                   const std::uint64_t* src,
                                                   std::size_t w,
                                                   std::uint8_t c) {
  const std::uint64_t ml = 0 - static_cast<std::uint64_t>(c & 1u);
  const std::uint64_t mh = 0 - static_cast<std::uint64_t>((c >> 1) & 1u);
  const __m256i vml = _mm256_set1_epi64x(static_cast<long long>(ml));
  const __m256i vmh = _mm256_set1_epi64x(static_cast<long long>(mh));
  std::size_t j = 0;
  for (; j + 4 <= w; j += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
    const __m256i l =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + j),
                        _mm256_xor_si256(l, _mm256_and_si256(s, vml)));
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + j),
                        _mm256_xor_si256(h, _mm256_and_si256(s, vmh)));
  }
  for (; j < w; ++j) {
    lo[j] ^= src[j] & ml;
    hi[j] ^= src[j] & mh;
  }
}

__attribute__((target("avx2"))) void xor_scatter_avx2(
    std::uint64_t* acc, const std::uint64_t* rows, std::size_t w,
    const std::uint64_t* entries, std::size_t count) {
  if (w == 16) {
    // K = 1024 fast path, run-detecting (see the portable kernel for the
    // run rationale): a run holds the destination in four ymm accumulators
    // across all of its row XORs.
    std::size_t e = 0;
    while (e < count) {
      const std::uint32_t d = static_cast<std::uint32_t>(entries[e]);
      std::size_t f = e + 1;
      while (f < count && static_cast<std::uint32_t>(entries[f]) == d) ++f;
      std::uint64_t* const dst = acc + d;
      if (f == e + 1) {
        const std::uint64_t* const src = rows + (entries[e] >> 32);
        for (int j = 0; j < 4; ++j) {
          const __m256i s = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(src + 4 * j));
          __m256i* const dj = reinterpret_cast<__m256i*>(dst + 4 * j);
          _mm256_storeu_si256(dj,
                              _mm256_xor_si256(_mm256_loadu_si256(dj), s));
        }
      } else {
        __m256i a0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst));
        __m256i a1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + 4));
        __m256i a2 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + 8));
        __m256i a3 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + 12));
        for (std::size_t x = e; x < f; ++x) {
          const std::uint64_t* const src = rows + (entries[x] >> 32);
          a0 = _mm256_xor_si256(
              a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
          a1 = _mm256_xor_si256(
              a1,
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 4)));
          a2 = _mm256_xor_si256(
              a2,
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 8)));
          a3 = _mm256_xor_si256(
              a3, _mm256_loadu_si256(
                      reinterpret_cast<const __m256i*>(src + 12)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 4), a1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 8), a2);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + 12), a3);
      }
      e = f;
    }
    return;
  }
  for (std::size_t e = 0; e < count; ++e) {
    std::uint64_t* const dst = acc + static_cast<std::uint32_t>(entries[e]);
    const std::uint64_t* const src = rows + (entries[e] >> 32);
    std::size_t j = 0;
    for (; j + 4 <= w; j += 4) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
      __m256i* const d = reinterpret_cast<__m256i*>(dst + j);
      _mm256_storeu_si256(d, _mm256_xor_si256(_mm256_loadu_si256(d), s));
    }
    for (; j < w; ++j) dst[j] ^= src[j];
  }
}

__attribute__((target("avx2"))) void xor_scatter_single_avx2(
    std::uint64_t* acc, const std::uint64_t* rows, std::size_t w,
    const std::uint64_t* entries, std::size_t count) {
  if (w == 16) {
    // K = 1024 fast path: one entry is four ymm load/xor/store triples.
    for (std::size_t e = 0; e < count; ++e) {
      std::uint64_t* const dst = acc + static_cast<std::uint32_t>(entries[e]);
      const std::uint64_t* const src = rows + (entries[e] >> 32);
      for (int j = 0; j < 4; ++j) {
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + 4 * j));
        __m256i* const d = reinterpret_cast<__m256i*>(dst + 4 * j);
        _mm256_storeu_si256(d, _mm256_xor_si256(_mm256_loadu_si256(d), s));
      }
    }
    return;
  }
  xor_scatter_avx2(acc, rows, w, entries, count);
}

__attribute__((target("avx2"))) void spread_pair_avx2(
    const std::uint64_t* lo, const std::uint64_t* hi, std::size_t k,
    std::uint8_t* out) {
  // 32 elements per step: broadcast the 32-bit plane chunk, shuffle each
  // byte lane onto the source byte holding its bit, isolate the lane's bit
  // and compare-to-mask into a 0/1 byte (0/2 for the hi plane).
  const __m256i shuf = _mm256_setr_epi8(
      0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2,
      3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i bits = _mm256_setr_epi8(
      1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8,
      16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128);
  std::size_t base = 0;
  while (base + 32 <= k) {
    const std::size_t word = base / 64;
    const int half = static_cast<int>((base / 32) % 2);
    const std::uint32_t l32 =
        static_cast<std::uint32_t>(lo[word] >> (32 * half));
    const std::uint32_t h32 =
        static_cast<std::uint32_t>(hi[word] >> (32 * half));
    const __m256i vl = _mm256_shuffle_epi8(
        _mm256_set1_epi32(static_cast<int>(l32)), shuf);
    const __m256i vh = _mm256_shuffle_epi8(
        _mm256_set1_epi32(static_cast<int>(h32)), shuf);
    const __m256i bl = _mm256_and_si256(
        _mm256_cmpeq_epi8(_mm256_and_si256(vl, bits), bits),
        _mm256_set1_epi8(1));
    const __m256i bh = _mm256_and_si256(
        _mm256_cmpeq_epi8(_mm256_and_si256(vh, bits), bits),
        _mm256_set1_epi8(2));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + base),
                        _mm256_or_si256(bl, bh));
    base += 32;
  }
  for (; base < k; ++base) {
    const std::size_t word = base / 64;
    const int bit = static_cast<int>(base % 64);
    out[base] = static_cast<std::uint8_t>(((lo[word] >> bit) & 1u) |
                                          (((hi[word] >> bit) & 1u) << 1));
  }
}

// ---------------------------------------------------------------- AVX-512

__attribute__((target("avx512f"))) void xor_row_avx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t w) {
  std::size_t j = 0;
  for (; j + 8 <= w; j += 8) {
    const __m512i s = _mm512_loadu_si512(src + j);
    const __m512i d = _mm512_loadu_si512(dst + j);
    _mm512_storeu_si512(dst + j, _mm512_xor_si512(d, s));
  }
  if (j < w) {
    const __mmask8 k = static_cast<__mmask8>((1u << (w - j)) - 1u);
    const __m512i s = _mm512_maskz_loadu_epi64(k, src + j);
    const __m512i d = _mm512_maskz_loadu_epi64(k, dst + j);
    _mm512_mask_storeu_epi64(dst + j, k, _mm512_xor_si512(d, s));
  }
}

__attribute__((target("avx512f"))) void xor_row2_avx512(
    std::uint64_t* lo, std::uint64_t* hi, const std::uint64_t* src,
    std::size_t w, std::uint8_t c) {
  const std::uint64_t ml = 0 - static_cast<std::uint64_t>(c & 1u);
  const std::uint64_t mh = 0 - static_cast<std::uint64_t>((c >> 1) & 1u);
  const __m512i vml = _mm512_set1_epi64(static_cast<long long>(ml));
  const __m512i vmh = _mm512_set1_epi64(static_cast<long long>(mh));
  std::size_t j = 0;
  for (; j + 8 <= w; j += 8) {
    const __m512i s = _mm512_loadu_si512(src + j);
    const __m512i l = _mm512_loadu_si512(lo + j);
    _mm512_storeu_si512(lo + j,
                        _mm512_xor_si512(l, _mm512_and_si512(s, vml)));
    const __m512i h = _mm512_loadu_si512(hi + j);
    _mm512_storeu_si512(hi + j,
                        _mm512_xor_si512(h, _mm512_and_si512(s, vmh)));
  }
  if (j < w) {
    const __mmask8 k = static_cast<__mmask8>((1u << (w - j)) - 1u);
    const __m512i s = _mm512_maskz_loadu_epi64(k, src + j);
    const __m512i l = _mm512_maskz_loadu_epi64(k, lo + j);
    _mm512_mask_storeu_epi64(lo + j, k,
                             _mm512_xor_si512(l, _mm512_and_si512(s, vml)));
    const __m512i h = _mm512_maskz_loadu_epi64(k, hi + j);
    _mm512_mask_storeu_epi64(hi + j, k,
                             _mm512_xor_si512(h, _mm512_and_si512(s, vmh)));
  }
}

__attribute__((target("avx512f"))) void xor_scatter_avx512(
    std::uint64_t* acc, const std::uint64_t* rows, std::size_t w,
    const std::uint64_t* entries, std::size_t count) {
  if (w == 16) {
    // K = 1024 fast path, run-detecting (see the portable kernel for the
    // run rationale): a run holds the destination in two zmm accumulators
    // across all of its row XORs.
    std::size_t e = 0;
    while (e < count) {
      const std::uint32_t d = static_cast<std::uint32_t>(entries[e]);
      std::size_t f = e + 1;
      while (f < count && static_cast<std::uint32_t>(entries[f]) == d) ++f;
      std::uint64_t* const dst = acc + d;
      if (f == e + 1) {
        const std::uint64_t* const src = rows + (entries[e] >> 32);
        _mm512_storeu_si512(dst,
                            _mm512_xor_si512(_mm512_loadu_si512(dst),
                                             _mm512_loadu_si512(src)));
        _mm512_storeu_si512(dst + 8,
                            _mm512_xor_si512(_mm512_loadu_si512(dst + 8),
                                             _mm512_loadu_si512(src + 8)));
      } else {
        __m512i a0 = _mm512_loadu_si512(dst);
        __m512i a1 = _mm512_loadu_si512(dst + 8);
        for (std::size_t x = e; x < f; ++x) {
          const std::uint64_t* const src = rows + (entries[x] >> 32);
          a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(src));
          a1 = _mm512_xor_si512(a1, _mm512_loadu_si512(src + 8));
        }
        _mm512_storeu_si512(dst, a0);
        _mm512_storeu_si512(dst + 8, a1);
      }
      e = f;
    }
    return;
  }
  for (std::size_t e = 0; e < count; ++e) {
    std::uint64_t* const dst = acc + static_cast<std::uint32_t>(entries[e]);
    const std::uint64_t* const src = rows + (entries[e] >> 32);
    std::size_t j = 0;
    for (; j + 8 <= w; j += 8) {
      const __m512i s = _mm512_loadu_si512(src + j);
      const __m512i d = _mm512_loadu_si512(dst + j);
      _mm512_storeu_si512(dst + j, _mm512_xor_si512(d, s));
    }
    if (j < w) {
      const __mmask8 k = static_cast<__mmask8>((1u << (w - j)) - 1u);
      const __m512i s = _mm512_maskz_loadu_epi64(k, src + j);
      const __m512i d = _mm512_maskz_loadu_epi64(k, dst + j);
      _mm512_mask_storeu_epi64(dst + j, k, _mm512_xor_si512(d, s));
    }
  }
}

__attribute__((target("avx512f"))) void xor_scatter_single_avx512(
    std::uint64_t* acc, const std::uint64_t* rows, std::size_t w,
    const std::uint64_t* entries, std::size_t count) {
  if (w == 16) {
    // K = 1024 fast path: one entry is two zmm load/xor/store triples.
    for (std::size_t e = 0; e < count; ++e) {
      std::uint64_t* const dst = acc + static_cast<std::uint32_t>(entries[e]);
      const std::uint64_t* const src = rows + (entries[e] >> 32);
      _mm512_storeu_si512(dst, _mm512_xor_si512(_mm512_loadu_si512(dst),
                                                _mm512_loadu_si512(src)));
      _mm512_storeu_si512(
          dst + 8, _mm512_xor_si512(_mm512_loadu_si512(dst + 8),
                                    _mm512_loadu_si512(src + 8)));
    }
    return;
  }
  xor_scatter_avx512(acc, rows, w, entries, count);
}

// AVX-512BW: a plane word IS a byte mask — one masked broadcast per plane
// expands 64 bits to 64 one-byte elements.
__attribute__((target("avx512f,avx512bw"))) void spread_pair_avx512(
    const std::uint64_t* lo, const std::uint64_t* hi, std::size_t k,
    std::uint8_t* out) {
  const __m512i one = _mm512_set1_epi8(1);
  const __m512i two = _mm512_set1_epi8(2);
  std::size_t base = 0;
  std::size_t word = 0;
  for (; base + 64 <= k; base += 64, ++word) {
    const __m512i vl =
        _mm512_maskz_mov_epi8(static_cast<__mmask64>(lo[word]), one);
    const __m512i vh =
        _mm512_maskz_mov_epi8(static_cast<__mmask64>(hi[word]), two);
    _mm512_storeu_si512(out + base, _mm512_or_si512(vl, vh));
  }
  if (base < k) {
    const __mmask64 tail =
        (static_cast<__mmask64>(1) << (k - base)) - 1;  // k - base < 64
    const __m512i vl =
        _mm512_maskz_mov_epi8(static_cast<__mmask64>(lo[word]), one);
    const __m512i vh =
        _mm512_maskz_mov_epi8(static_cast<__mmask64>(hi[word]), two);
    _mm512_mask_storeu_epi8(out + base, tail, _mm512_or_si512(vl, vh));
  }
}

#endif  // ICE_SIMD_X86

constexpr XorKernels kPortableKernels = {
    xor_row_portable,         xor_row2_portable,
    xor_scatter_portable,     xor_scatter_single_portable,
    spread_pair_portable,     XorTier::kPortable,
    "portable"};
#if defined(ICE_SIMD_X86)
constexpr XorKernels kAvx2Kernels = {
    xor_row_avx2,         xor_row2_avx2,  xor_scatter_avx2,
    xor_scatter_single_avx2, spread_pair_avx2, XorTier::kAvx2,
    "avx2"};
constexpr XorKernels kAvx512Kernels = {
    xor_row_avx512,           xor_row2_avx512,
    xor_scatter_avx512,       xor_scatter_single_avx512,
    spread_pair_avx512,       XorTier::kAvx512,
    "avx512"};
#endif

XorTier probe_best_tier() {
#if defined(ICE_SIMD_X86)
  // BW is required for the byte-mask plane expansion; every AVX-512 server
  // part since Skylake-SP ships F and BW together.
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return XorTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return XorTier::kAvx2;
#endif
  return XorTier::kPortable;
}

const XorKernels* initial_kernels() {
  XorTier tier = best_supported_tier();
  if (const char* env = std::getenv("ICE_SIMD")) {
    const std::string_view want(env);
    XorTier requested = tier;
    if (want == "portable") {
      requested = XorTier::kPortable;
    } else if (want == "avx2") {
      requested = XorTier::kAvx2;
    } else if (want == "avx512") {
      requested = XorTier::kAvx512;
    }
    if (tier_supported(requested)) tier = requested;
  }
  return &kernels_for(tier);
}

std::atomic<const XorKernels*>& active_slot() {
  static std::atomic<const XorKernels*> slot{initial_kernels()};
  return slot;
}

}  // namespace

XorTier best_supported_tier() {
  static const XorTier tier = probe_best_tier();
  return tier;
}

bool tier_supported(XorTier tier) {
  return static_cast<int>(tier) <= static_cast<int>(best_supported_tier());
}

const XorKernels& kernels_for(XorTier tier) {
  if (!tier_supported(tier)) {
    throw ParamError("simd::kernels_for: tier not supported by this CPU");
  }
  switch (tier) {
    case XorTier::kPortable:
      return kPortableKernels;
#if defined(ICE_SIMD_X86)
    case XorTier::kAvx2:
      return kAvx2Kernels;
    case XorTier::kAvx512:
      return kAvx512Kernels;
#else
    default:
      break;
#endif
  }
  throw ParamError("simd::kernels_for: unknown tier");
}

const XorKernels& active_kernels() { return *active_slot().load(); }

XorTier set_active_tier(XorTier tier) {
  const XorKernels& next = kernels_for(tier);  // validates support
  return active_slot().exchange(&next)->tier;
}

const char* tier_name(XorTier tier) {
  switch (tier) {
    case XorTier::kPortable:
      return "portable";
    case XorTier::kAvx2:
      return "avx2";
    case XorTier::kAvx512:
      return "avx512";
  }
  return "?";
}

}  // namespace ice::simd
