#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ice {

namespace {
void require_nonempty(const std::vector<double>& s) {
  if (s.empty()) throw std::logic_error("SampleStats: no samples");
}
}  // namespace

double SampleStats::mean() const {
  require_nonempty(samples_);
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  require_nonempty(samples_);
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  require_nonempty(samples_);
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::stddev() const {
  require_nonempty(samples_);
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleStats::percentile(double p) const {
  require_nonempty(samples_);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace ice
