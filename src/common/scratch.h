// Thread-local reusable scratch buffers for the audit hot paths.
//
// The PIR evaluation engine needs a fresh zeroed accumulator block per
// respond() call (per-shard, per-point XOR planes). Allocating those with
// `assign(w, 0)` on every call puts an allocator round-trip on the hot path;
// this arena keeps returned buffers on a thread-local free list so steady
// state reuses capacity and only pays the (unavoidable) zeroing memset.
//
// Lifetime rules (also documented in DESIGN.md §9):
//   * Leases are scoped: a Lease must be destroyed on the thread that took
//     it, before that thread exits. All users take a lease on the calling
//     thread, let pool workers write into disjoint slices, join, then drop
//     it — workers never hold leases of their own.
//   * Leases may nest (recursive audit paths); each take() pops or creates
//     an independent buffer, so a nested lease never aliases an outer one.
//   * Buffers grow monotonically and are only reclaimed at thread exit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace ice {

class ScratchArena {
 public:
  /// RAII borrow of one buffer; hands the storage back on destruction.
  class Lease {
   public:
    Lease(ScratchArena* arena, std::vector<std::uint64_t> buf,
          std::size_t words)
        : arena_(arena), buf_(std::move(buf)), words_(words) {}
    ~Lease() {
      if (arena_ != nullptr) arena_->give_back(std::move(buf_));
    }
    Lease(Lease&& o) noexcept
        : arena_(std::exchange(o.arena_, nullptr)),
          buf_(std::move(o.buf_)),
          words_(o.words_) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] std::uint64_t* data() { return buf_.data(); }
    [[nodiscard]] const std::uint64_t* data() const { return buf_.data(); }
    [[nodiscard]] std::size_t words() const { return words_; }

   private:
    ScratchArena* arena_;
    std::vector<std::uint64_t> buf_;
    std::size_t words_;
  };

  /// The calling thread's arena.
  static ScratchArena& local() {
    static thread_local ScratchArena arena;
    return arena;
  }

  /// Borrows a buffer with the first `words` words zeroed.
  [[nodiscard]] Lease take_zeroed(std::size_t words) {
    Lease lease = take(words);
    std::memset(lease.data(), 0, words * sizeof(std::uint64_t));
    return lease;
  }

  /// Borrows a buffer with at least `words` words of UNINITIALIZED storage.
  /// For destination-passing kernels that overwrite the whole span (pow
  /// tables, multiexp partials) — skips the memset take_zeroed pays.
  [[nodiscard]] Lease take(std::size_t words) {
    std::vector<std::uint64_t> buf = pop();
    const bool hit = buf.size() >= words;
    stats_.record(hit);
    if (!hit) buf.resize(words);
    return Lease(this, std::move(buf), words);
  }

  /// Reuse/miss tally for this thread's arena since thread start (a miss is
  /// a take() that had to allocate or grow a buffer). Steady-state hot paths
  /// should show misses flat across iterations; tests pin exactly that.
  [[nodiscard]] const HitCounter& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  std::vector<std::uint64_t> pop() {
    if (free_.empty()) return {};
    std::vector<std::uint64_t> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  void give_back(std::vector<std::uint64_t> buf) {
    free_.push_back(std::move(buf));
  }

  std::vector<std::vector<std::uint64_t>> free_;
  HitCounter stats_;
};

}  // namespace ice
