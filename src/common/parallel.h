// Chunked fan-out over a process-wide shared ThreadPool.
//
// Every parallel audit hot path (edge proof aggregation, PIR bitplane
// evaluation, TPA multi-exponentiation) is expressed as: partition an index
// range into at most `threads` contiguous chunks, compute a per-chunk
// partial on pool workers, then reduce the partials in chunk order on the
// caller. All reductions used are exact (integer addition, modular
// multiplication, XOR, or writes to disjoint output slots), so the result
// is bit-identical for every thread count — the differential tests in
// tests/ice/parallel_diff_test.cpp pin parallel == serial.
//
// `threads` follows the ProtocolParams::parallelism convention:
//   0  — one chunk per hardware thread (the default);
//   1  — exact single-threaded legacy path (no pool involvement);
//   t  — at most t chunks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace ice {

/// The process-wide pool shared by all parallel audit paths. Created on
/// first use with one worker per hardware thread; never torn down before
/// static destruction.
ThreadPool& shared_pool();

/// Maps a ProtocolParams::parallelism value to a concrete chunk budget
/// (0 -> hardware concurrency, never less than 1).
[[nodiscard]] std::size_t resolve_parallelism(std::size_t requested);

/// Half-open index range [begin, end).
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

/// Number of chunks a balanced partition of [0, n) into at most max_chunks
/// non-empty contiguous ranges produces: min(max_chunks, n), 0 for n == 0.
/// Pure arithmetic — callers size their partial buffers with this instead
/// of materializing the partition.
[[nodiscard]] inline std::size_t chunk_count(std::size_t n,
                                             std::size_t max_chunks) {
  if (n == 0) return 0;
  return std::min(std::max<std::size_t>(1, max_chunks), n);
}

/// Bounds of chunk c of the balanced partition of [0, n) into `chunks`
/// ranges (front chunks take the remainder; identical layout to
/// partition_range).
[[nodiscard]] inline ChunkRange chunk_bounds(std::size_t n, std::size_t chunks,
                                             std::size_t c) {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t begin = c * base + std::min(c, extra);
  return {begin, begin + base + (c < extra ? 1 : 0)};
}

/// Balanced partition of [0, n) into min(max_chunks, n) non-empty
/// contiguous ranges (front chunks take the remainder). Empty for n == 0.
/// Allocates; hot paths use chunk_count/chunk_bounds arithmetic instead.
[[nodiscard]] std::vector<ChunkRange> partition_range(std::size_t n,
                                                      std::size_t max_chunks);

/// Invokes fn(chunk_index, begin, end) for every chunk of [0, n), with the
/// chunk budget resolved from `threads` as described above. Runs inline
/// (sequential, in chunk order) when only one chunk results or when the
/// caller is itself a pool worker; otherwise the chunks are broadcast over
/// the shared pool with the caller participating (ThreadPool::run_chunks:
/// stack job descriptor + atomic claim counter, no allocation). Blocks
/// until every chunk is done; rethrows the first chunk exception after all
/// chunks have finished.
template <typename Fn>
void parallel_chunks(std::size_t n, std::size_t threads, Fn&& fn) {
  const std::size_t chunks = chunk_count(n, resolve_parallelism(threads));
  if (chunks <= 1 || ThreadPool::on_pool_thread()) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const ChunkRange r = chunk_bounds(n, chunks, c);
      fn(c, r.begin, r.end);
    }
    return;
  }
  auto body = [&fn, n, chunks](std::size_t c) {
    const ChunkRange r = chunk_bounds(n, chunks, c);
    fn(c, r.begin, r.end);
  };
  shared_pool().run_chunks(chunks, body);
}

}  // namespace ice
