// Chunked fan-out over a process-wide shared ThreadPool.
//
// Every parallel audit hot path (edge proof aggregation, PIR bitplane
// evaluation, TPA multi-exponentiation) is expressed as: partition an index
// range into at most `threads` contiguous chunks, compute a per-chunk
// partial on pool workers, then reduce the partials in chunk order on the
// caller. All reductions used are exact (integer addition, modular
// multiplication, XOR, or writes to disjoint output slots), so the result
// is bit-identical for every thread count — the differential tests in
// tests/ice/parallel_diff_test.cpp pin parallel == serial.
//
// `threads` follows the ProtocolParams::parallelism convention:
//   0  — one chunk per hardware thread (the default);
//   1  — exact single-threaded legacy path (no pool involvement);
//   t  — at most t chunks.
#pragma once

#include <cstddef>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace ice {

/// The process-wide pool shared by all parallel audit paths. Created on
/// first use with one worker per hardware thread; never torn down before
/// static destruction.
ThreadPool& shared_pool();

/// Maps a ProtocolParams::parallelism value to a concrete chunk budget
/// (0 -> hardware concurrency, never less than 1).
[[nodiscard]] std::size_t resolve_parallelism(std::size_t requested);

/// Half-open index range [begin, end).
struct ChunkRange {
  std::size_t begin;
  std::size_t end;
};

/// Balanced partition of [0, n) into min(max_chunks, n) non-empty
/// contiguous ranges (front chunks take the remainder). Empty for n == 0.
[[nodiscard]] std::vector<ChunkRange> partition_range(std::size_t n,
                                                      std::size_t max_chunks);

/// Invokes fn(chunk_index, begin, end) for every chunk of [0, n), with the
/// chunk budget resolved from `threads` as described above. Runs inline
/// (sequential, in chunk order) when only one chunk results or when the
/// caller is itself a pool worker; otherwise chunk 0 runs on the caller
/// while the rest run on the shared pool. Blocks until every chunk is done;
/// rethrows the first chunk exception after all chunks have finished.
template <typename Fn>
void parallel_chunks(std::size_t n, std::size_t threads, Fn&& fn) {
  const std::vector<ChunkRange> chunks =
      partition_range(n, resolve_parallelism(threads));
  if (chunks.size() <= 1 || ThreadPool::on_pool_thread()) {
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      fn(c, chunks[c].begin, chunks[c].end);
    }
    return;
  }
  ThreadPool& pool = shared_pool();
  std::vector<std::future<void>> pending;
  pending.reserve(chunks.size() - 1);
  for (std::size_t c = 1; c < chunks.size(); ++c) {
    pending.push_back(pool.submit(
        [&fn, c, range = chunks[c]] { fn(c, range.begin, range.end); }));
  }
  // The caller is one of the workers; even if its chunk throws, every
  // submitted chunk must be joined before unwinding (tasks capture fn and
  // caller-owned state by reference).
  std::exception_ptr first_error;
  try {
    fn(0, chunks[0].begin, chunks[0].end);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ice
