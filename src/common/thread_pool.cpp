#include "common/thread_pool.h"

#include <stdexcept>

namespace ice {

namespace {
thread_local bool t_on_pool_thread = false;
}  // namespace

bool ThreadPool::on_pool_thread() { return t_on_pool_thread; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ice
