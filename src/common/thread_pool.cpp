#include "common/thread_pool.h"

#include <stdexcept>

namespace ice {

namespace {
thread_local bool t_on_pool_thread = false;
}  // namespace

bool ThreadPool::on_pool_thread() { return t_on_pool_thread; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::drain_job(ChunkJob* job) {
  std::size_t executed = 0;
  std::exception_ptr first_error;
  for (;;) {
    const std::size_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) break;
    try {
      job->invoke(job->ctx, c);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
    ++executed;
  }
  if (first_error) {
    std::lock_guard lock(mu_);
    if (!job->error) job->error = first_error;
  }
  return executed;
}

void ThreadPool::run_chunks_erased(std::size_t num_chunks,
                                   void (*invoke)(void*, std::size_t),
                                   void* ctx) {
  if (num_chunks == 0) return;
  ChunkJob job;
  job.invoke = invoke;
  job.ctx = ctx;
  job.num_chunks = num_chunks;
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      throw std::logic_error("ThreadPool::run_chunks after shutdown");
    }
    if (job_ != nullptr) {
      // Another broadcast is in flight; one job slot keeps the protocol
      // allocation-free. Mark this region inline-only and run it below,
      // off the lock — still correct, just not overlapped.
      job.num_chunks = 0;
    } else {
      job_ = &job;
    }
  }
  if (job.num_chunks == 0) {
    for (std::size_t c = 0; c < num_chunks; ++c) invoke(ctx, c);
    return;
  }
  cv_.notify_all();
  const std::size_t mine = drain_job(&job);
  std::unique_lock lock(mu_);
  job_ = nullptr;  // no new workers may enter the job
  job.done += mine;
  // The job lives on this stack frame: wait until every worker that entered
  // has exited (they update `done`/`workers` under mu_ as they leave).
  job_cv_.wait(lock, [&job] {
    return job.done == job.num_chunks && job.workers == 0;
  });
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop() {
  t_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      // A broadcast job is interesting only while it has unclaimed chunks;
      // otherwise a woken worker would spin on the exhausted counter until
      // the poster clears the slot.
      const auto job_has_work = [this] {
        return job_ != nullptr &&
               job_->next.load(std::memory_order_relaxed) < job_->num_chunks;
      };
      cv_.wait(lock, [&] {
        return stopping_ || !queue_.empty() || job_has_work();
      });
      if (ChunkJob* job = job_; job != nullptr && job_has_work()) {
        ++job->workers;
        lock.unlock();
        const std::size_t executed = drain_job(job);
        lock.lock();
        job->done += executed;
        --job->workers;
        job_cv_.notify_all();
        continue;  // re-check queue / next job
      }
      // `job_has_work()` reads the lock-free chunk counter, which other
      // workers advance without holding mu_: the wait predicate can pass and
      // the re-check above fail. That raced wake must loop back into wait —
      // only a stopping_ pool may retire the thread.
      if (stopping_ && queue_.empty()) return;
      if (queue_.empty()) continue;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ice
