// Seedable non-cryptographic RNG for workload generation and tests.
//
// Crypto randomness lives in crypto/csprng.h; this SplitMix64 is for
// reproducible simulations only (Zipf draws, cache traces, fault injection).
#pragma once

#include <cstdint>
#include <limits>

namespace ice {

/// SplitMix64: tiny, fast, statistically solid for simulation purposes.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= limit);
    return v % bound;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace ice
