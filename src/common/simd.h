// Runtime-dispatched SIMD XOR row kernels for the PIR evaluation engine.
//
// The Woodruff–Yekhanin servers are pure XOR/scatter workloads: every hot
// loop XORs a K-bit tag row (packed in 64-bit words) into an accumulator
// plane. These kernels provide that operation in three tiers — portable
// u64, AVX2 (256-bit) and AVX-512 (512-bit) — probed once at startup (the
// same pattern as the bignum ADX squaring dispatch) and selectable at
// runtime so benches can compare tiers and tests can pin every tier to the
// portable reference.
//
// All kernels are branch-free in the GF(4) coefficient: xor_row2 turns the
// 2-bit coefficient into all-ones/all-zero word masks instead of branching,
// so the per-row scatter of the fused batch sweep never mispredicts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ice::simd {

enum class XorTier : std::uint8_t { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

/// The kernel bundle for one tier. Rows are `w` little-endian 64-bit words;
/// source and destination ranges must not partially overlap.
struct XorKernels {
  /// dst[0..w) ^= src[0..w).
  void (*xor_row)(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t w);
  /// Branchless two-plane scatter for one GF(4) coefficient c in [0, 3]:
  ///   lo[0..w) ^= src & (-(c & 1)),  hi[0..w) ^= src & (-((c >> 1) & 1)).
  /// XORing an all-zero mask is a no-op, so the result is bit-identical to
  /// the branchy "skip zero coefficients" formulation.
  void (*xor_row2)(std::uint64_t* lo, std::uint64_t* hi,
                   const std::uint64_t* src, std::size_t w, std::uint8_t c);
  /// Sparse XOR scatter stream — the hot kernel of the fused batch sweep.
  /// Each entry packs two word offsets, dst | (src << 32), and requests
  ///   acc[dst .. dst + w) ^= rows[src .. src + w).
  /// The caller emits entries only for nonzero GF(4) coefficient
  /// components (an omitted entry is exactly the zero-mask no-op of
  /// xor_row2, so skipping is bit-identical to the branchless form), which
  /// cuts the XOR work to the nonzero fraction on every tier. Entries with
  /// equal dst may repeat; XOR is commutative and exact, so entry order
  /// never changes the result. Implementations detect RUNS of consecutive
  /// entries sharing a dst and fold them in registers before one writeback,
  /// so callers that can group same-destination entries (the fused sweep's
  /// component-major sections) skip most of the accumulator's per-entry
  /// load/store round-trips; any ordering remains correct, all-singleton
  /// streams simply degrade to the plain scatter. One indirect call per
  /// (point, block, section).
  void (*xor_scatter)(std::uint64_t* acc, const std::uint64_t* rows,
                      std::size_t w, const std::uint64_t* entries,
                      std::size_t count);
  /// Same contract as xor_scatter, tuned for streams where same-dst runs
  /// are rare (every entry pays the accumulator round-trip anyway, so the
  /// run scan is pure overhead): plain per-entry read-xor-write, no run
  /// detection. The two are interchangeable for correctness; callers pick
  /// by the stream shape they emit (the fused sweep uses this one for the
  /// third-derivative sections, whose destinations almost never repeat
  /// consecutively).
  void (*xor_scatter_single)(std::uint64_t* acc, const std::uint64_t* rows,
                             std::size_t w, const std::uint64_t* entries,
                             std::size_t count);
  /// Expands k bit-plane pairs into one 2-bit element byte each:
  ///   out[i] = ((lo[i / 64] >> (i % 64)) & 1) |
  ///            (((hi[i / 64] >> (i % 64)) & 1) << 1)   for i in [0, k).
  /// This is the response unpack step (packed GF(4) component planes to
  /// one element byte per bitplane); it sweeps every accumulator pair once
  /// per respond, so it is dispatched alongside the XOR kernels (AVX-512
  /// turns a 64-bit plane word directly into a 64-byte mask expansion).
  void (*spread_pair)(const std::uint64_t* lo, const std::uint64_t* hi,
                      std::size_t k, std::uint8_t* out);
  XorTier tier;
  const char* name;
};

/// Highest tier this CPU supports (probed once, cached).
[[nodiscard]] XorTier best_supported_tier();

/// True when the CPU can run `tier`.
[[nodiscard]] bool tier_supported(XorTier tier);

/// Kernel bundle for a specific tier. Throws ParamError when the CPU lacks
/// the tier (callers gate on tier_supported()).
[[nodiscard]] const XorKernels& kernels_for(XorTier tier);

/// The process-wide active bundle: best_supported_tier() unless overridden
/// by set_active_tier() or the ICE_SIMD environment variable
/// ("portable" | "avx2" | "avx512", clamped to what the CPU supports).
[[nodiscard]] const XorKernels& active_kernels();

/// Overrides the active tier (benches compare tiers; tests pin the fused
/// sweep bit-identical across them). Returns the previous tier. The slot is
/// atomic, so concurrent active_kernels() readers are race-free, but calls
/// are meant for startup / between evaluations, not mid-sweep.
XorTier set_active_tier(XorTier tier);

[[nodiscard]] const char* tier_name(XorTier tier);

}  // namespace ice::simd
