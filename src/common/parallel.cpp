#include "common/parallel.h"

#include <algorithm>
#include <thread>

namespace ice {

ThreadPool& shared_pool() {
  static ThreadPool pool(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

std::size_t resolve_parallelism(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::vector<ChunkRange> partition_range(std::size_t n,
                                        std::size_t max_chunks) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  const std::size_t count = std::min(std::max<std::size_t>(1, max_chunks), n);
  chunks.reserve(count);
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    chunks.push_back({begin, begin + len});
    begin += len;
  }
  return chunks;
}

}  // namespace ice
