// Small descriptive-statistics helper for latency samples.
//
// Used by the multi-user TPA experiment (paper Fig. 4b reports a latency
// distribution with a long tail) and by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ice {

/// Hit/miss tally for caches and buffer pools (scratch arena reuse, wire
/// buffer pools). Single-threaded by design: each counter instance belongs
/// to one thread-local structure; aggregate across threads at report time.
struct HitCounter {
  std::uint64_t hits = 0;    // request served from pooled capacity
  std::uint64_t misses = 0;  // request needed fresh/grown storage

  void record(bool hit) { hit ? ++hits : ++misses; }
  [[nodiscard]] std::uint64_t total() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return total() == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total());
  }
  void reset() { hits = misses = 0; }
};

/// Accumulates double-valued samples and reports summary statistics.
/// Percentile queries sort a copy; intended for offline analysis, not hot
/// paths.
class SampleStats {
 public:
  void add(double v) { samples_.push_back(v); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sample standard deviation (0 for fewer than 2 samples).
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace ice
