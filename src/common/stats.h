// Small descriptive-statistics helper for latency samples.
//
// Used by the multi-user TPA experiment (paper Fig. 4b reports a latency
// distribution with a long tail) and by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace ice {

/// Accumulates double-valued samples and reports summary statistics.
/// Percentile queries sort a copy; intended for offline analysis, not hot
/// paths.
class SampleStats {
 public:
  void add(double v) { samples_.push_back(v); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sample standard deviation (0 for fewer than 2 samples).
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace ice
