// Wall-clock stopwatch used by benchmarks and examples.
#pragma once

#include <chrono>

namespace ice {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ice
