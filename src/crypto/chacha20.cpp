#include "crypto/chacha20.h"

#include <bit>
#include <cstring>

namespace ice::crypto {

namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(const Key& key, const Nonce& nonce, std::uint32_t counter) {
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[static_cast<std::size_t>(i)] +
                            state_[static_cast<std::size_t>(i)];
    block_[static_cast<std::size_t>(4 * i + 0)] =
        static_cast<std::uint8_t>(v);
    block_[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(v >> 8);
    block_[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(v >> 16);
    block_[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];  // 32-bit counter; 256 GiB per nonce is ample here
  block_pos_ = 0;
}

void ChaCha20::keystream(std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (block_pos_ == kBlockSize) refill();
    const std::size_t take =
        std::min(out.size() - done, kBlockSize - block_pos_);
    std::memcpy(out.data() + done, block_.data() + block_pos_, take);
    block_pos_ += take;
    done += take;
  }
}

Bytes ChaCha20::next(std::size_t n) {
  Bytes out(n);
  keystream(out);
  return out;
}

void ChaCha20::xor_inplace(std::span<std::uint8_t> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    if (block_pos_ == kBlockSize) refill();
    const std::size_t take =
        std::min(data.size() - done, kBlockSize - block_pos_);
    for (std::size_t i = 0; i < take; ++i) {
      data[done + i] ^= block_[block_pos_ + i];
    }
    block_pos_ += take;
    done += take;
  }
}

std::uint64_t ChaCha20::next_u64() {
  std::uint8_t buf[8];
  keystream(buf);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

}  // namespace ice::crypto
