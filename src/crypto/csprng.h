// Cryptographically secure PRNG.
//
// ChaCha20 keyed from std::random_device entropy. Implements bn::Rng64 so it
// can drive prime generation and random residue sampling directly. A seeded
// deterministic mode exists for reproducible tests and benchmarks.
#pragma once

#include <cstdint>

#include "bignum/random.h"
#include "crypto/chacha20.h"

namespace ice::crypto {

class Csprng final : public bn::Rng64 {
 public:
  /// Seeds from the operating system entropy source.
  Csprng();

  /// Deterministic stream for tests/benchmarks. NOT for production keys.
  static Csprng deterministic(std::uint64_t seed);

  std::uint64_t next_u64() override;

  /// Fills a buffer with random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Returns `n` random bytes.
  Bytes bytes(std::size_t n);

 private:
  explicit Csprng(const ChaCha20::Key& key);

  ChaCha20 stream_;
};

}  // namespace ice::crypto
