// Cryptographically secure PRNG.
//
// ChaCha20 keyed from std::random_device entropy. Implements bn::Rng64 so it
// can drive prime generation and random residue sampling directly. A seeded
// deterministic mode exists for reproducible tests and benchmarks.
#pragma once

#include <cstdint>
#include <mutex>

#include "bignum/random.h"
#include "crypto/chacha20.h"

namespace ice::crypto {

class Csprng final : public bn::Rng64 {
 public:
  /// Seeds from the operating system entropy source.
  Csprng();

  /// Deterministic stream for tests/benchmarks. NOT for production keys.
  static Csprng deterministic(std::uint64_t seed);

  std::uint64_t next_u64() override;

  /// Fills a buffer with random bytes.
  void fill(std::span<std::uint8_t> out);

  /// Returns `n` random bytes.
  Bytes bytes(std::size_t n);

 private:
  explicit Csprng(const ChaCha20::Key& key);

  ChaCha20 stream_;
};

/// Mutex-serialized Csprng so one generator can be shared by concurrent
/// sessions (services draw challenge secrets from any transport thread).
/// Each next_u64 is an independent draw, so interleaving across threads
/// changes which values each caller sees but never their distribution.
class SharedCsprng final : public bn::Rng64 {
 public:
  SharedCsprng() = default;
  explicit SharedCsprng(Csprng inner) : inner_(std::move(inner)) {}

  /// Deterministic stream for tests/benchmarks. NOT for production keys.
  static SharedCsprng deterministic(std::uint64_t seed) {
    return SharedCsprng(Csprng::deterministic(seed));
  }

  std::uint64_t next_u64() override {
    std::lock_guard lock(mu_);
    return inner_.next_u64();
  }

 private:
  std::mutex mu_;
  Csprng inner_;
};

}  // namespace ice::crypto
