// SHA-256 (FIPS 180-4).
//
// Used for key derivation (challenge key -> PRF key), block fingerprints in
// the MEC substrate, and test fixtures. Incremental (init/update/final) and
// one-shot APIs.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ice::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs more input.
  void update(BytesView data);

  /// Finalizes and returns the digest. The object must not be reused after
  /// finalization (construct a new one).
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// Digest as an owned byte vector (handy for serde and concatenation).
Bytes sha256(BytesView data);

}  // namespace ice::crypto
