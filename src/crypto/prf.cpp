#include "crypto/prf.h"

#include "common/error.h"
#include "crypto/sha256.h"

namespace ice::crypto {

namespace {

ChaCha20::Key derive_key(const bn::BigInt& e) {
  const Bytes material = e.to_bytes_be();
  Sha256 h;
  const Bytes domain = to_bytes("ice-coefficient-prf-v1");
  h.update(domain);
  h.update(material);
  const auto digest = h.finalize();
  ChaCha20::Key key{};
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

}  // namespace

CoefficientPrf::CoefficientPrf(const bn::BigInt& key, std::size_t coeff_bits)
    : coeff_bits_(coeff_bits), stream_(derive_key(key), ChaCha20::Nonce{}) {
  if (coeff_bits == 0 || coeff_bits > 256) {
    throw ParamError("CoefficientPrf: coefficient width must be in [1, 256]");
  }
}

bn::BigInt CoefficientPrf::next() {
  const std::size_t nbytes = (coeff_bits_ + 7) / 8;
  for (;;) {
    Bytes raw = stream_.next(nbytes);
    // Mask down to exactly coeff_bits_.
    const std::size_t excess = nbytes * 8 - coeff_bits_;
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    bn::BigInt v = bn::BigInt::from_bytes_be(raw);
    if (!v.is_zero()) return v;
  }
}

std::vector<bn::BigInt> CoefficientPrf::expand(const bn::BigInt& key,
                                               std::size_t coeff_bits,
                                               std::size_t count) {
  CoefficientPrf prf(key, coeff_bits);
  std::vector<bn::BigInt> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(prf.next());
  return out;
}

}  // namespace ice::crypto
