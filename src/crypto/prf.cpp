#include "crypto/prf.h"

#include <array>
#include <span>

#include "common/error.h"
#include "crypto/sha256.h"

namespace ice::crypto {

namespace {

ChaCha20::Key derive_key(const bn::BigInt& e) {
  static constexpr char kDomain[] = "ice-coefficient-prf-v1";
  Sha256 h;
  h.update(BytesView(reinterpret_cast<const std::uint8_t*>(kDomain),
                     sizeof(kDomain) - 1));
  // Key material: big-endian bytes of e. Challenge keys are short (kappa
  // bits), so a stack buffer covers them; absurdly long keys fall back to
  // one heap buffer at PRF construction (never in the coefficient loop).
  const std::size_t nbytes = (e.bit_length() + 7) / 8;
  if (nbytes <= 256) {
    std::array<std::uint8_t, 256> buf;
    for (std::size_t i = 0; i < nbytes; ++i) {
      const std::size_t bit = (nbytes - 1 - i) * 8;
      const auto limb = e.limbs()[bit / 64];
      buf[i] = static_cast<std::uint8_t>(limb >> (bit % 64));
    }
    h.update(BytesView(buf.data(), nbytes));
  } else {
    const Bytes material = e.to_bytes_be();
    h.update(material);
  }
  const auto digest = h.finalize();
  ChaCha20::Key key{};
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

}  // namespace

CoefficientPrf::CoefficientPrf(const bn::BigInt& key, std::size_t coeff_bits)
    : coeff_bits_(coeff_bits), stream_(derive_key(key), ChaCha20::Nonce{}) {
  if (coeff_bits == 0 || coeff_bits > 256) {
    throw ParamError("CoefficientPrf: coefficient width must be in [1, 256]");
  }
}

bn::BigInt CoefficientPrf::next() {
  bn::BigInt v;
  next_into(v);
  return v;
}

void CoefficientPrf::next_into(bn::BigInt& out) {
  const std::size_t nbytes = (coeff_bits_ + 7) / 8;  // <= 32
  std::array<std::uint8_t, 32> raw;
  for (;;) {
    stream_.keystream(std::span(raw.data(), nbytes));
    // Mask down to exactly coeff_bits_.
    const std::size_t excess = nbytes * 8 - coeff_bits_;
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    out.assign_bytes_be(BytesView(raw.data(), nbytes));
    if (!out.is_zero()) return;
  }
}

std::vector<bn::BigInt> CoefficientPrf::expand(const bn::BigInt& key,
                                               std::size_t coeff_bits,
                                               std::size_t count) {
  std::vector<bn::BigInt> out;
  expand_into(key, coeff_bits, count, out);
  return out;
}

void CoefficientPrf::expand_into(const bn::BigInt& key,
                                 std::size_t coeff_bits, std::size_t count,
                                 std::vector<bn::BigInt>& out) {
  CoefficientPrf prf(key, coeff_bits);
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) prf.next_into(out[i]);
}

}  // namespace ice::crypto
