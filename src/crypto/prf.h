// Challenge-coefficient PRF.
//
// ChallengeEdge sends a random key `e`; the edge and the verifier both expand
// it to the coefficient sequence a_1, a_2, ..., a_m of d-bit integers used to
// aggregate data blocks / tags (paper Sec. III-A, ProofEdge/VerifyEdge).
// Determinism of this expansion is what makes the proof checkable.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"
#include "crypto/chacha20.h"

namespace ice::crypto {

/// Expands a challenge key into a deterministic stream of coefficients.
class CoefficientPrf {
 public:
  /// `key` is the challenge value e (any length; hashed to a ChaCha20 key).
  /// `coeff_bits` is d, the coefficient width in bits (1..=256).
  CoefficientPrf(const bn::BigInt& key, std::size_t coeff_bits);

  /// The i-th call returns a_{i+1}. Nonzero (a zero coefficient would let a
  /// corrupted block escape the aggregate; the PRF resamples on zero).
  bn::BigInt next();

  /// In-place next(): draws keystream into a stack buffer and reuses `out`'s
  /// limb capacity — no heap traffic per coefficient.
  void next_into(bn::BigInt& out);

  /// First `count` coefficients from a fresh expansion of `key`.
  static std::vector<bn::BigInt> expand(const bn::BigInt& key,
                                        std::size_t coeff_bits,
                                        std::size_t count);

  /// In-place expand(): resizes `out` to `count` and overwrites each slot,
  /// reusing vector and per-element limb capacity across calls. Steady-state
  /// audit loops pass a warm thread-local vector and allocate nothing.
  static void expand_into(const bn::BigInt& key, std::size_t coeff_bits,
                          std::size_t count, std::vector<bn::BigInt>& out);

  [[nodiscard]] std::size_t coeff_bits() const { return coeff_bits_; }

 private:
  std::size_t coeff_bits_;
  ChaCha20 stream_;
};

}  // namespace ice::crypto
