// ChaCha20 stream cipher (RFC 8439).
//
// Serves as the protocol PRF/PRG: the TPA's challenge key `e` seeds a
// ChaCha20 keystream that both the edge and the verifier expand into the
// per-block challenge coefficients a_1 .. a_{n_j} (Sec. III-A of the paper),
// and the CSPRNG (csprng.h) runs ChaCha20 over entropy from the OS.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ice::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  using Key = std::array<std::uint8_t, kKeySize>;
  using Nonce = std::array<std::uint8_t, kNonceSize>;

  /// Keystream starts at block `counter` (RFC 8439 initial counter).
  ChaCha20(const Key& key, const Nonce& nonce, std::uint32_t counter = 0);

  /// Fills `out` with the next keystream bytes.
  void keystream(std::span<std::uint8_t> out);

  /// Next keystream bytes as an owned buffer.
  Bytes next(std::size_t n);

  /// XORs `data` with the keystream in place (encrypt == decrypt).
  void xor_inplace(std::span<std::uint8_t> data);

  /// Next 64 bits of keystream as an integer (little-endian).
  std::uint64_t next_u64();

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> block_{};
  std::size_t block_pos_ = kBlockSize;  // forces refill on first use
};

}  // namespace ice::crypto
