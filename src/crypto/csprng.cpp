#include "crypto/csprng.h"

#include <random>

namespace ice::crypto {

namespace {

ChaCha20::Key os_entropy_key() {
  std::random_device rd;
  ChaCha20::Key key{};
  for (std::size_t i = 0; i < key.size(); i += 4) {
    const std::uint32_t v = rd();
    key[i] = static_cast<std::uint8_t>(v);
    key[i + 1] = static_cast<std::uint8_t>(v >> 8);
    key[i + 2] = static_cast<std::uint8_t>(v >> 16);
    key[i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return key;
}

}  // namespace

Csprng::Csprng(const ChaCha20::Key& key) : stream_(key, ChaCha20::Nonce{}) {}

Csprng::Csprng() : Csprng(os_entropy_key()) {}

Csprng Csprng::deterministic(std::uint64_t seed) {
  ChaCha20::Key key{};
  for (int i = 0; i < 8; ++i) {
    key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
  }
  key[8] = 0x5e;  // domain-separate from the all-zero key
  return Csprng(key);
}

std::uint64_t Csprng::next_u64() { return stream_.next_u64(); }

void Csprng::fill(std::span<std::uint8_t> out) { stream_.keystream(out); }

Bytes Csprng::bytes(std::size_t n) { return stream_.next(n); }

}  // namespace ice::crypto
