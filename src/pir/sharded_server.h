// Range-sharded TPA tag state: one TagDatabase + Embedding + PirServer per
// shard of the ShardMap partition.
//
// Each shard is an independent instance of the paper's TPASetup state over
// its own index range, so a |S_j|-point challenge routed by shard touches
// only the rows it names: at n = 10^6 and 8 shards a 64-point batch sweeps
// 8 databases of 125k rows (each point accumulated only within its shard)
// instead of one 10^6-row database accumulating all 64 points per row —
// an ~8x reduction in row-sweep volume before any cross-shard parallelism,
// with smaller per-shard gamma (ceil((6 n_s)^{1/3}) + 2) shrinking queries
// and responses on top. Privacy degrades gracefully: a TPA learns WHICH
// shard(s) a query touches but, within a shard, the weight-3 perturbation
// hides the index exactly as in the monolithic layout.
//
// Locking (two levels, both reader-writer) + epochs (DESIGN.md §15):
//   * `structure_mu_` guards the shard vector and the ShardMap. Queries,
//     tag reads and staged updates take it shared; `append`/`split`/
//     `close_epoch` take it exclusive (they mutate base state and bump the
//     map epoch). A fan-out therefore runs against one structural AND
//     content snapshot: neither a split nor an epoch close can land
//     mid-audit, and a query planned before either fails the epoch check
//     with the typed StaleShardMapError below.
//   * Each shard's `mu` guards its CONTENT for paths that edit base rows
//     directly. Queries take it shared; `update` now STAGES into the
//     TagDatabase delta plane and also takes it only shared — an update
//     storm no longer excludes audits of the same shard. Only the legacy
//     `update_in_place` baseline still takes it exclusive.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "bignum/bigint.h"
#include "common/error.h"
#include "pir/embedding.h"
#include "pir/messages.h"
#include "pir/server.h"
#include "pir/shard_map.h"
#include "pir/tag_database.h"

namespace ice::pir {

/// A sharded query was planned against a shard map the server has since
/// mutated (split or append). ProtocolError so the RPC dispatcher maps it
/// to Status::kFailedPrecondition; the client refreshes its map and
/// re-plans.
class StaleShardMapError : public ProtocolError {
 public:
  using ProtocolError::ProtocolError;
};

/// What one server-wide close_epoch() did.
struct EpochCloseResult {
  bool closed = false;            // false: no shard had staged rows
  std::uint64_t epoch = 0;        // map epoch after the call
  std::size_t rows_merged = 0;    // staged rows applied across all shards
  std::size_t plane_rebuilds = 0; // shards whose overlay forced a rebuild
};

class ShardedTagServer {
 public:
  /// Builds the initial partition of `tags` with per-shard budget
  /// `max_shard_n` (0 = one monolithic shard, the paper's layout).
  /// `strategy`/`parallelism` are forwarded to every per-shard PirServer;
  /// parallelism also bounds the cross-shard fan-out of respond_sharded.
  ShardedTagServer(std::size_t tag_bits, std::span<const bn::BigInt> tags,
                   std::size_t max_shard_n,
                   EvalStrategy strategy = EvalStrategy::kBitsliced,
                   std::size_t parallelism = 1);

  [[nodiscard]] std::size_t tag_bits() const { return tag_bits_; }
  [[nodiscard]] std::size_t n() const;
  [[nodiscard]] std::size_t num_shards() const;
  [[nodiscard]] std::uint64_t epoch() const;
  /// Copy of the current shard map (the wire answer to a map fetch).
  [[nodiscard]] ShardMap map_snapshot() const;
  /// gamma of one shard's embedding (bench/tests introspection).
  [[nodiscard]] std::size_t shard_gamma(std::size_t shard) const;

  /// Plain (non-private) tag read by global index.
  [[nodiscard]] bn::BigInt tag(std::size_t index) const;

  /// Stages a replacement for the tag at global `index` into the next
  /// epoch (TagDatabase::update). Takes only SHARED locks: concurrent
  /// queries of the same shard proceed, and the new tag stays invisible to
  /// every read until close_epoch() merges it.
  void update(std::size_t index, const bn::BigInt& tag);

  /// Legacy pre-epoch baseline: writes the row directly under the owning
  /// shard's exclusive content lock and drops its plane cache. Kept for
  /// the bench_updates A/B arm.
  void update_in_place(std::size_t index, const bn::BigInt& tag);

  /// Merges every shard's staged rows into its base state under the
  /// exclusive structure lock, and bumps the map epoch iff any row merged
  /// (so in-flight client plans turn detectably stale, but an empty close
  /// never churns planners).
  EpochCloseResult close_epoch();

  /// Rows currently staged for the next epoch, across all shards.
  [[nodiscard]] std::size_t staged_updates() const;

  /// Aggregated epoch-engine counters across all shards.
  [[nodiscard]] EpochStats epoch_stats() const;

  /// Appends a tag to the tail shard, splitting it when it outgrows the
  /// budget. Structural: bumps the epoch. Returns the new global index.
  std::size_t append(const bn::BigInt& tag);

  /// Splits shard `s` in two (ShardMap::split semantics). Structural:
  /// bumps the epoch. Returns the new upper shard's id.
  std::size_t split(std::size_t s);

  /// Evaluates every sub-query of `query` against one structural snapshot,
  /// fanning the shards out over the shared ThreadPool (disjoint response
  /// slots, so the merge is deterministic at every thread count). Throws
  /// StaleShardMapError when query.epoch no longer matches, ParamError on
  /// malformed shard lists (unknown, duplicate or unsorted shard ids).
  void respond_sharded(const ShardedPirQuery& query,
                       ShardedPirResponse& out) const;

  /// Monolithic compatibility surface for the single-shard layout (the
  /// bench/test baseline and the pre-sharding wire methods). Both throw
  /// ParamError when num_shards() != 1. The embedding reference stays
  /// valid until the next structural mutation.
  [[nodiscard]] const Embedding& single_embedding() const;
  [[nodiscard]] PirResponse respond_single(const PirQuery& query) const;

  /// Forces TPASetup preprocessing (plane builds) on every shard; returns
  /// the summed build time in seconds.
  double preprocess() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;  // content lock (update vs. query)
    TagDatabase db;
    Embedding embedding;
    PirServer server;

    Shard(std::size_t tag_bits, std::span<const bn::BigInt> tags,
          EvalStrategy strategy, std::size_t parallelism)
        : db(tag_bits),
          embedding(tags.empty() ? 1 : tags.size()),
          server(db, embedding, strategy, parallelism) {
      for (const auto& t : tags) db.add(t);
    }
  };

  /// Replaces shard slot `s` with a fresh Shard over `tags`. Caller holds
  /// structure_mu_ exclusively.
  void rebuild_shard(std::size_t s, std::span<const bn::BigInt> tags);
  /// Collects shard `s`'s tags (caller holds structure_mu_ exclusively).
  [[nodiscard]] std::vector<bn::BigInt> drain_shard(std::size_t s) const;

  std::size_t tag_bits_;
  EvalStrategy strategy_;
  std::size_t parallelism_;

  mutable std::shared_mutex structure_mu_;  // guards shards_ + map_
  // unique_ptr slots: PirServer keeps non-owning pointers into its Shard,
  // and Shard carries a mutex, so shard objects must never move.
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardMap map_;
};

}  // namespace ice::pir
