#include "pir/server.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <type_traits>

#include "common/error.h"
#include "common/parallel.h"
#include "common/scratch.h"
#include "common/simd.h"

namespace ice::pir {

namespace {

using gf::GF4;
using gf::GF4Vector;

// Per-monomial evaluation data at a fixed query point q: the monomial value
// q_a q_b q_c and the three partial derivatives (products of the other two
// coordinates).
struct MonomialEval {
  GF4 mono;
  GF4 deriv[3];  // aligned with the triple positions a < b < c
};

MonomialEval eval_monomial(const GF4Vector& q, const Embedding::Triple& t) {
  const GF4 qa = q[t[0]], qb = q[t[1]], qc = q[t[2]];
  MonomialEval e;
  e.deriv[0] = qb * qc;
  e.deriv[1] = qa * qc;
  e.deriv[2] = qa * qb;
  e.mono = qa * e.deriv[0];
  return e;
}

// Rows per cache block of the fused bitsliced sweep: 128 rows of up to 16
// words (K = 1024) are 16 KB, so a block plus one point's accumulator
// planes stays L1-resident while the point loop revisits the block m times
// — the database itself streams through L2/DRAM exactly once per batch.
constexpr std::size_t kRowBlock = 128;

// Points per accumulator tile of the fused sweep: the live slabs are
// bounded to kPointTile * 2w(1 + gamma) words (~172 KB at K = 1024,
// n = 10^4) so large batches keep their accumulators cache-resident; the
// database is re-streamed once per tile, which is cheap next to slab
// thrashing at m = 64.
constexpr std::size_t kPointTile = 16;

// Packed GF(4) coefficient quad per query-coordinate key
// qa | qb << 2 | qc << 4: bits 0-1 the monomial qa*qb*qc, bits 2-3 the
// partial d0 = qb*qc, bits 4-5 d1 = qa*qc, bits 6-7 d2 = qa*qb. One table
// load replaces four field multiplies in the sweep's hottest scalar loop.
constexpr std::array<std::uint8_t, 64> make_coeff_lut() {
  std::array<std::uint8_t, 64> lut{};
  for (unsigned key = 0; key < 64; ++key) {
    const GF4 qa(static_cast<std::uint8_t>(key & 3));
    const GF4 qb(static_cast<std::uint8_t>((key >> 2) & 3));
    const GF4 qc(static_cast<std::uint8_t>((key >> 4) & 3));
    const GF4 d0 = qb * qc;
    const GF4 d1 = qa * qc;
    const GF4 d2 = qa * qb;
    const GF4 mono = qa * d0;
    lut[key] = static_cast<std::uint8_t>(
        mono.value() | (d0.value() << 2) | (d1.value() << 4) |
        (d2.value() << 6));
  }
  return lut;
}
constexpr std::array<std::uint8_t, 64> kCoeffLut = make_coeff_lut();

// Reshapes one response entry to (k planes, gamma gradients) and zeroes the
// planes WITHOUT discarding capacity: resize + assign reuse the existing
// buffers, unlike gradients.assign(gamma, GF4Vector(k)) which re-copies a
// fresh k-element temporary into every slot. A warm entry costs no heap
// traffic to reshape.
void reshape_zeroed(PirSingleResponse& entry, std::size_t k,
                    std::size_t gamma) {
  entry.values.assign(k, GF4::zero());
  entry.gradients.resize(gamma);
  for (auto& g : entry.gradients) g.assign(k, GF4::zero());
}

// Expands k elements of a lo/hi bit-plane pair into GF(4) bytes
// (lo | hi << 1 per element) through the dispatched spread kernel. GF4 is
// one trivially-copyable byte whose representation IS the 2-bit element
// value, so the kernel writes the output array directly.
void unpack_pair(const simd::XorKernels& kern, const std::uint64_t* lo,
                 const std::uint64_t* hi, std::size_t k, GF4* out) {
  static_assert(std::is_trivially_copyable_v<GF4> && sizeof(GF4) == 1);
  kern.spread_pair(lo, hi, k, reinterpret_cast<std::uint8_t*>(out));
}

}  // namespace

PirServer::PirServer(const TagDatabase& db, const Embedding& embedding,
                     EvalStrategy strategy, std::size_t parallelism)
    : db_(&db),
      embedding_(&embedding),
      strategy_(strategy),
      parallelism_(parallelism) {
  if (db.size() > embedding.n()) {
    throw ParamError("PirServer: database larger than embedding domain");
  }
}

PirResponse PirServer::respond(const PirQuery& query) const {
  PirResponse out;
  respond_into(query, out);
  return out;
}

void PirServer::respond_into(const PirQuery& query, PirResponse& out) const {
  for (const auto& q : query.points) {
    if (q.size() != embedding_->gamma()) {
      throw ParamError("PirServer: query point has wrong dimension");
    }
  }
  if (query.points.empty()) {
    out.entries.clear();
    return;
  }
  switch (strategy_) {
    case EvalStrategy::kNaive:
      return eval_naive_batch(query.points, out);
    case EvalStrategy::kMatrix:
      return eval_matrix_batch(query.points, out);
    case EvalStrategy::kBitsliced:
      return eval_bitsliced_batch(query.points, out);
  }
  throw ParamError("PirServer: unknown strategy");
}

PirSingleResponse PirServer::respond_one(const GF4Vector& q) const {
  if (q.size() != embedding_->gamma()) {
    throw ParamError("PirServer: query point has wrong dimension");
  }
  switch (strategy_) {
    case EvalStrategy::kNaive:
      return eval_naive(q);
    case EvalStrategy::kMatrix:
      return eval_matrix(q);
    case EvalStrategy::kBitsliced:
      return eval_bitsliced(q);
  }
  throw ParamError("PirServer: unknown strategy");
}

// ------------------------------------------------------------------------
// Reference per-point paths (pre-batch structure, kept as the pinning
// standard for the fused engine's differential tests).
// ------------------------------------------------------------------------

PirSingleResponse PirServer::eval_naive(const GF4Vector& q) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  PirSingleResponse out;
  out.values.assign(k, GF4::zero());
  out.gradients.assign(gamma, GF4Vector(k));
  // One full polynomial evaluation per bitplane: every monomial is
  // recomputed from q and multiplied by its 0/1 coefficient. Bitplanes are
  // independent, so they shard across the pool into disjoint output slots
  // (plane pi of every coordinate-major gradient vector).
  parallel_chunks(k, parallelism_, [&](std::size_t, std::size_t plane_begin,
                                       std::size_t plane_end) {
    for (std::size_t pi = plane_begin; pi < plane_end; ++pi) {
      GF4 value;
      GF4Vector grad(gamma);
      for (std::size_t i = 0; i < n; ++i) {
        const GF4 coeff(db_->bit(i, pi) ? std::uint8_t{1} : std::uint8_t{0});
        const Embedding::Triple t = embedding_->triple(i);
        const MonomialEval e = eval_monomial(q, t);
        value += coeff * e.mono;
        for (int d = 0; d < 3; ++d) {
          grad[t[static_cast<std::size_t>(d)]] +=
              coeff * e.deriv[static_cast<std::size_t>(d)];
        }
      }
      out.values[pi] = value;
      for (std::size_t j = 0; j < gamma; ++j) out.gradients[j][pi] = grad[j];
    }
  });
  return out;
}

PirSingleResponse PirServer::eval_matrix(const GF4Vector& q) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  // Monomial values and derivatives once per query (not per bitplane);
  // disjoint slots, so the precompute shards over monomials.
  std::vector<MonomialEval> evals(n);
  std::vector<Embedding::Triple> triples(n);
  parallel_chunks(n, parallelism_,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      triples[i] = embedding_->triple(i);
                      evals[i] = eval_monomial(q, triples[i]);
                    }
                  });
  PirSingleResponse out;
  out.values.assign(k, GF4::zero());
  out.gradients.assign(gamma, GF4Vector(k));
  // Bitplanes shard over the pool; every shard reuses the shared monomial
  // table read-only and owns its slice of the output (plane pi across the
  // coordinate-major gradient vectors).
  parallel_chunks(k, parallelism_, [&](std::size_t, std::size_t plane_begin,
                                       std::size_t plane_end) {
    GF4Vector grad(gamma);
    for (std::size_t pi = plane_begin; pi < plane_end; ++pi) {
      GF4 value;
      std::fill(grad.begin(), grad.end(), GF4::zero());
      // only nonzero coefficients; the view applies the epoch overlay
      db_->plane(pi).for_each([&](std::uint32_t i) {
        const MonomialEval& e = evals[i];
        const Embedding::Triple& t = triples[i];
        value += e.mono;
        grad[t[0]] += e.deriv[0];
        grad[t[1]] += e.deriv[1];
        grad[t[2]] += e.deriv[2];
      });
      out.values[pi] = value;
      for (std::size_t j = 0; j < gamma; ++j) out.gradients[j][pi] = grad[j];
    }
  });
  return out;
}

PirSingleResponse PirServer::eval_bitsliced(const GF4Vector& q) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  const std::size_t w = db_->words_per_tag();

  // Two bit planes (GF(4) components over basis {1, x}) for the value and
  // for each of the gamma gradient coordinates. Tag rows shard across the
  // pool, each shard XOR-accumulating into its own slice of one scratch
  // lease (layout per shard: v_lo, v_hi, g_lo, g_hi); XOR is exact and
  // commutative, so folding the shards in ascending order reproduces the
  // serial planes bit for bit.
  const std::size_t stride = 2 * w + 2 * gamma * w;
  const std::size_t num_shards =
      chunk_count(n, resolve_parallelism(parallelism_));
  auto lease = ScratchArena::local().take_zeroed(
      std::max<std::size_t>(num_shards, 1) * stride);
  std::uint64_t* const acc = lease.data();
  const simd::XorKernels& kern = simd::active_kernels();

  parallel_chunks(n, parallelism_, [&](std::size_t shard, std::size_t begin,
                                       std::size_t end) {
    std::uint64_t* const v_lo = acc + shard * stride;
    std::uint64_t* const v_hi = v_lo + w;
    std::uint64_t* const g_lo = v_hi + w;
    std::uint64_t* const g_hi = g_lo + gamma * w;
    for (std::size_t i = begin; i < end; ++i) {
      const Embedding::Triple t = embedding_->triple(i);
      const MonomialEval e = eval_monomial(q, t);
      const std::uint64_t* row = db_->row(i);
      if (e.mono.value() & 1) kern.xor_row(v_lo, row, w);
      if (e.mono.value() & 2) kern.xor_row(v_hi, row, w);
      for (int d = 0; d < 3; ++d) {
        const GF4 dv = e.deriv[static_cast<std::size_t>(d)];
        if (dv.is_zero()) continue;
        const std::size_t pos = t[static_cast<std::size_t>(d)];
        if (dv.value() & 1) kern.xor_row(g_lo + pos * w, row, w);
        if (dv.value() & 2) kern.xor_row(g_hi + pos * w, row, w);
      }
    }
  });

  for (std::size_t s = 1; s < num_shards; ++s) {
    kern.xor_row(acc, acc + s * stride, stride);
  }
  const std::uint64_t* const v_lo = acc;
  const std::uint64_t* const v_hi = v_lo + w;
  const std::uint64_t* const g_lo = v_hi + w;
  const std::uint64_t* const g_hi = g_lo + gamma * w;

  // Coordinate-major output matches the accumulator layout, so every
  // vector unpacks from one contiguous plane pair.
  PirSingleResponse out;
  out.values.assign(k, GF4::zero());
  out.gradients.assign(gamma, GF4Vector(k));
  unpack_pair(kern, v_lo, v_hi, k, out.values.data());
  for (std::size_t j = 0; j < gamma; ++j) {
    unpack_pair(kern, g_lo + j * w, g_hi + j * w, k, out.gradients[j].data());
  }
  return out;
}

// ------------------------------------------------------------------------
// Fused batch engine: one pass over the tag database for the whole query.
// ------------------------------------------------------------------------

void PirServer::eval_naive_batch(const std::vector<GF4Vector>& qs,
                                 PirResponse& out) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  const std::size_t w = db_->words_per_tag();
  const std::size_t m = qs.size();
  const Embedding::Triple* const triples = embedding_->triples().data();
  const std::uint64_t* const rows = db_->rows_data();

  out.entries.resize(m);
  for (auto& entry : out.entries) reshape_zeroed(entry, k, gamma);
  // Naive still multiplies every monomial by its 0/1 coefficient, but the
  // batch sweep hoists the per-point monomial evaluations out of the plane
  // loop: per plane-chunk, each row is visited once and its m evaluations
  // are applied to every bitplane of the chunk (m-way accumulation into
  // disjoint output slots; GF(4) addition is XOR, so accumulation order
  // cannot change the result vs the respond_one loop).
  parallel_chunks(k, parallelism_, [&](std::size_t, std::size_t plane_begin,
                                       std::size_t plane_end) {
    std::vector<MonomialEval> row_evals(m);
    for (std::size_t i = 0; i < n; ++i) {
      const Embedding::Triple t = triples[i];
      for (std::size_t p = 0; p < m; ++p) {
        row_evals[p] = eval_monomial(qs[p], t);
      }
      const std::uint64_t* const rw = rows + i * w;
      for (std::size_t p = 0; p < m; ++p) {
        const MonomialEval& e = row_evals[p];
        PirSingleResponse& entry = out.entries[p];
        for (std::size_t pi = plane_begin; pi < plane_end; ++pi) {
          const GF4 coeff(
              static_cast<std::uint8_t>((rw[pi / 64] >> (pi % 64)) & 1u));
          entry.values[pi] += coeff * e.mono;
          for (int d = 0; d < 3; ++d) {
            entry.gradients[t[static_cast<std::size_t>(d)]][pi] +=
                coeff * e.deriv[static_cast<std::size_t>(d)];
          }
        }
      }
    }
  });
}

void PirServer::eval_matrix_batch(const std::vector<GF4Vector>& qs,
                                  PirResponse& out) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  const std::size_t m = qs.size();
  const Embedding::Triple* const triples = embedding_->triples().data();

  // Stage 1 — the monomial/derivative table for ALL m points in one pass
  // over the triples (point-major: point p's table is evals[p*n .. p*n+n)).
  // Reused across every bitplane, exactly like the single-point path, but
  // the triples are now also shared across points.
  static thread_local std::vector<MonomialEval> evals;
  evals.resize(m * n);
  MonomialEval* const ev = evals.data();
  parallel_chunks(n, parallelism_,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      const Embedding::Triple t = triples[i];
                      for (std::size_t p = 0; p < m; ++p) {
                        ev[p * n + i] = eval_monomial(qs[p], t);
                      }
                    }
                  });

  out.entries.resize(m);
  parallel_chunks(m, parallelism_,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t p = begin; p < end; ++p) {
                      reshape_zeroed(out.entries[p], k, gamma);
                    }
                  });

  // Stage 2 — one sweep over the per-plane index lists with m-way
  // accumulation: each plane's list is resident in cache while all m points
  // consume it, so the matrix representation streams from memory once per
  // batch instead of once per point.
  parallel_chunks(k, parallelism_, [&](std::size_t, std::size_t plane_begin,
                                       std::size_t plane_end) {
    for (std::size_t pi = plane_begin; pi < plane_end; ++pi) {
      const PlaneView plane = db_->plane(pi);
      for (std::size_t p = 0; p < m; ++p) {
        const MonomialEval* const pev = ev + p * n;
        GF4 value;
        PirSingleResponse& entry = out.entries[p];
        // only nonzero coefficients; the view applies the epoch overlay
        plane.for_each([&](std::uint32_t i) {
          const MonomialEval& e = pev[i];
          const Embedding::Triple& t = triples[i];
          value += e.mono;
          entry.gradients[t[0]][pi] += e.deriv[0];
          entry.gradients[t[1]][pi] += e.deriv[1];
          entry.gradients[t[2]][pi] += e.deriv[2];
        });
        entry.values[pi] = value;
      }
    }
  });
}

void PirServer::eval_bitsliced_batch(const std::vector<GF4Vector>& qs,
                                     PirResponse& out) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  const std::size_t w = db_->words_per_tag();
  const std::size_t m = qs.size();
  const Embedding::Triple* const triples = embedding_->triples().data();
  const std::uint64_t* const rows = db_->rows_data();
  const simd::XorKernels& kern = simd::active_kernels();

  // Cache-blocked accumulator layout: per (shard, point) a contiguous run
  // of 2w(1 + gamma) words — the value pair [v_lo | v_hi] followed by the
  // gamma gradient pairs [g_lo_j | g_hi_j] (lo/hi interleaved per
  // coordinate, so one scatter touches one contiguous 2w-word pair). All m
  // points of a shard are adjacent, all shards adjacent in one reusable
  // thread-local lease, zeroed per call instead of allocated per call.
  const std::size_t pair = 2 * w;
  const std::size_t stride = pair * (1 + gamma);
  const std::size_t num_shards =
      chunk_count(n, resolve_parallelism(parallelism_));
  auto lease = ScratchArena::local().take_zeroed(
      std::max<std::size_t>(num_shards, 1) * m * stride);
  std::uint64_t* const acc = lease.data();

  // One pass over the rows per point tile. Within a shard, rows are walked
  // in blocks of kRowBlock; per block the gradient slot offsets are derived
  // from the triples once (they do not depend on the point), then for each
  // point of the tile a branchless scalar loop looks up the packed GF(4)
  // coefficient quad per row (kCoeffLut on the 6-bit query-coordinate key)
  // and appends one (dst, src) entry per NONZERO component — the entry
  // store always executes, the cursor only advances on a set bit.
  //
  // Entries are emitted COMPONENT-MAJOR: eight sections per (block, point),
  // one per coefficient bit (value lo/hi, then lo/hi of the three partial
  // derivatives), each section flushed by its own xor_scatter call. Within
  // a section consecutive entries frequently share a destination — the
  // value sections are a single destination outright, and the derivative
  // sections revisit each gradient slot in consecutive clumps because the
  // triples are generated coordinate-sorted — which is exactly the shape
  // the run-detecting kernels convert into register-resident folds instead
  // of per-entry accumulator read-modify-write round-trips.
  //
  // Skipped zero components are exactly the XORs the branchless masked
  // form would have turned into no-ops, and XOR is exact and commutative,
  // so together with the respond_one-matching shard boundaries the fold
  // below reproduces the per-point responses bit for bit; the point tiling
  // and section ordering only reorder independent XOR terms.
  constexpr std::size_t kSecCap = kRowBlock + 8;
  parallel_chunks(n, parallelism_, [&](std::size_t shard, std::size_t begin,
                                       std::size_t end) {
    std::uint64_t* const shard_acc = acc + shard * m * stride;
    std::uint64_t cand[8 * kRowBlock];
    std::uint64_t sec[8 * kSecCap];
    for (std::size_t p0 = 0; p0 < m; p0 += kPointTile) {
      const std::size_t p1 = std::min(m, p0 + kPointTile);
      for (std::size_t block = begin; block < end; block += kRowBlock) {
        const std::size_t nrows = std::min(end, block + kRowBlock) - block;
        // The eight candidate entries of a row (one per coefficient bit)
        // depend only on the triple, not on the query point, so they are
        // materialized once per block and reused by every point of the
        // tile — the per-point loop below degenerates to key lookup plus
        // eight copy-and-conditionally-advance steps.
        for (std::size_t r = 0; r < nrows; ++r) {
          const Embedding::Triple t = triples[block + r];
          const std::uint64_t src = static_cast<std::uint64_t>(r * w) << 32;
          const std::uint64_t o0 = pair * (1 + t[0]);
          const std::uint64_t o1 = pair * (1 + t[1]);
          const std::uint64_t o2 = pair * (1 + t[2]);
          std::uint64_t* const c8 = cand + 8 * r;
          c8[0] = src;
          c8[1] = src | w;
          c8[2] = src | o0;
          c8[3] = src | (o0 + w);
          c8[4] = src | o1;
          c8[5] = src | (o1 + w);
          c8[6] = src | o2;
          c8[7] = src | (o2 + w);
        }
        for (std::size_t p = p0; p < p1; ++p) {
          const GF4Vector& q = qs[p];
          std::uint64_t* const s0 = sec;
          std::uint64_t* const s1 = sec + kSecCap;
          std::uint64_t* const s2 = sec + 2 * kSecCap;
          std::uint64_t* const s3 = sec + 3 * kSecCap;
          std::uint64_t* const s4 = sec + 4 * kSecCap;
          std::uint64_t* const s5 = sec + 5 * kSecCap;
          std::uint64_t* const s6 = sec + 6 * kSecCap;
          std::uint64_t* const s7 = sec + 7 * kSecCap;
          std::size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
          std::size_t n4 = 0, n5 = 0, n6 = 0, n7 = 0;
          for (std::size_t r = 0; r < nrows; ++r) {
            const Embedding::Triple t = triples[block + r];
            const unsigned key =
                static_cast<unsigned>(q[t[0]].value()) |
                (static_cast<unsigned>(q[t[1]].value()) << 2) |
                (static_cast<unsigned>(q[t[2]].value()) << 4);
            const unsigned c = kCoeffLut[key];
            const std::uint64_t* const c8 = cand + 8 * r;
            s0[n0] = c8[0];
            n0 += c & 1u;
            s1[n1] = c8[1];
            n1 += (c >> 1) & 1u;
            s2[n2] = c8[2];
            n2 += (c >> 2) & 1u;
            s3[n3] = c8[3];
            n3 += (c >> 3) & 1u;
            s4[n4] = c8[4];
            n4 += (c >> 4) & 1u;
            s5[n5] = c8[5];
            n5 += (c >> 5) & 1u;
            s6[n6] = c8[6];
            n6 += (c >> 6) & 1u;
            s7[n7] = c8[7];
            n7 += (c >> 7) & 1u;
          }
          std::uint64_t* const pacc = shard_acc + p * stride;
          const std::uint64_t* const block_rows = rows + block * w;
          kern.xor_scatter(pacc, block_rows, w, s0, n0);
          kern.xor_scatter(pacc, block_rows, w, s1, n1);
          kern.xor_scatter(pacc, block_rows, w, s2, n2);
          kern.xor_scatter(pacc, block_rows, w, s3, n3);
          kern.xor_scatter(pacc, block_rows, w, s4, n4);
          kern.xor_scatter(pacc, block_rows, w, s5, n5);
          // d2's destination is the innermost (fastest-varying) triple
          // coordinate, so its sections almost never repeat a destination
          // consecutively — the run scan would be pure overhead.
          kern.xor_scatter_single(pacc, block_rows, w, s6, n6);
          kern.xor_scatter_single(pacc, block_rows, w, s7, n7);
        }
      }
    }
  });

  // Fold shards in ascending order (deterministic; all m points fold in
  // one pass since the layout is contiguous).
  for (std::size_t s = 1; s < num_shards; ++s) {
    kern.xor_row(acc, acc + s * m * stride, m * stride);
  }

  // Unpack the component planes into per-point responses; the
  // coordinate-major gradient layout mirrors the accumulator, so every
  // output vector expands from one contiguous pair. Points are disjoint
  // output slots, so they shard over the pool. resize (not assign) keeps a
  // warm entry's buffers — unpack_pair overwrites every element, so no
  // zeroing is needed.
  out.entries.resize(m);
  parallel_chunks(m, parallelism_, [&](std::size_t, std::size_t begin,
                                       std::size_t end) {
    for (std::size_t p = begin; p < end; ++p) {
      const std::uint64_t* const pacc = acc + p * stride;
      PirSingleResponse& entry = out.entries[p];
      entry.values.resize(k);
      entry.gradients.resize(gamma);
      unpack_pair(kern, pacc, pacc + w, k, entry.values.data());
      for (std::size_t j = 0; j < gamma; ++j) {
        const std::uint64_t* const g = pacc + pair * (1 + j);
        entry.gradients[j].resize(k);
        unpack_pair(kern, g, g + w, k, entry.gradients[j].data());
      }
    }
  });
}

}  // namespace ice::pir
