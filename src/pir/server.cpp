#include "pir/server.h"

#include "common/error.h"
#include "common/parallel.h"

namespace ice::pir {

namespace {

using gf::GF4;
using gf::GF4Vector;

// Per-monomial evaluation data at a fixed query point q: the monomial value
// q_a q_b q_c and the three partial derivatives (products of the other two
// coordinates).
struct MonomialEval {
  GF4 mono;
  GF4 deriv[3];  // aligned with the triple positions a < b < c
};

MonomialEval eval_monomial(const GF4Vector& q, const Embedding::Triple& t) {
  const GF4 qa = q[t[0]], qb = q[t[1]], qc = q[t[2]];
  MonomialEval e;
  e.deriv[0] = qb * qc;
  e.deriv[1] = qa * qc;
  e.deriv[2] = qa * qb;
  e.mono = qa * e.deriv[0];
  return e;
}

}  // namespace

PirServer::PirServer(const TagDatabase& db, const Embedding& embedding,
                     EvalStrategy strategy, std::size_t parallelism)
    : db_(&db),
      embedding_(&embedding),
      strategy_(strategy),
      parallelism_(parallelism) {
  if (db.size() > embedding.n()) {
    throw ParamError("PirServer: database larger than embedding domain");
  }
}

PirResponse PirServer::respond(const PirQuery& query) const {
  PirResponse r;
  r.entries.reserve(query.points.size());
  for (const auto& q : query.points) r.entries.push_back(respond_one(q));
  return r;
}

PirSingleResponse PirServer::respond_one(const GF4Vector& q) const {
  if (q.size() != embedding_->gamma()) {
    throw ParamError("PirServer: query point has wrong dimension");
  }
  switch (strategy_) {
    case EvalStrategy::kNaive:
      return eval_naive(q);
    case EvalStrategy::kMatrix:
      return eval_matrix(q);
    case EvalStrategy::kBitsliced:
      return eval_bitsliced(q);
  }
  throw ParamError("PirServer: unknown strategy");
}

PirSingleResponse PirServer::eval_naive(const GF4Vector& q) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  PirSingleResponse out;
  out.values.assign(k, GF4::zero());
  out.gradients.assign(k, GF4Vector(gamma));
  // One full polynomial evaluation per bitplane: every monomial is
  // recomputed from q and multiplied by its 0/1 coefficient. Bitplanes are
  // independent, so they shard across the pool into disjoint output slots.
  parallel_chunks(k, parallelism_, [&](std::size_t, std::size_t plane_begin,
                                       std::size_t plane_end) {
    for (std::size_t pi = plane_begin; pi < plane_end; ++pi) {
      GF4 value;
      GF4Vector grad(gamma);
      for (std::size_t i = 0; i < n; ++i) {
        const GF4 coeff(db_->bit(i, pi) ? std::uint8_t{1} : std::uint8_t{0});
        const Embedding::Triple t = embedding_->triple(i);
        const MonomialEval e = eval_monomial(q, t);
        value += coeff * e.mono;
        for (int d = 0; d < 3; ++d) {
          grad[t[static_cast<std::size_t>(d)]] +=
              coeff * e.deriv[static_cast<std::size_t>(d)];
        }
      }
      out.values[pi] = value;
      out.gradients[pi] = std::move(grad);
    }
  });
  return out;
}

PirSingleResponse PirServer::eval_matrix(const GF4Vector& q) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  // Monomial values and derivatives once per query (not per bitplane);
  // disjoint slots, so the precompute shards over monomials.
  std::vector<MonomialEval> evals(n);
  std::vector<Embedding::Triple> triples(n);
  parallel_chunks(n, parallelism_,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      triples[i] = embedding_->triple(i);
                      evals[i] = eval_monomial(q, triples[i]);
                    }
                  });
  PirSingleResponse out;
  out.values.assign(k, GF4::zero());
  out.gradients.assign(k, GF4Vector(gamma));
  // Bitplanes shard over the pool; every shard reuses the shared monomial
  // table read-only and owns its slice of the output.
  parallel_chunks(k, parallelism_, [&](std::size_t, std::size_t plane_begin,
                                       std::size_t plane_end) {
    for (std::size_t pi = plane_begin; pi < plane_end; ++pi) {
      GF4 value;
      GF4Vector& grad = out.gradients[pi];
      for (std::uint32_t i : db_->plane(pi)) {  // only nonzero coefficients
        const MonomialEval& e = evals[i];
        const Embedding::Triple& t = triples[i];
        value += e.mono;
        grad[t[0]] += e.deriv[0];
        grad[t[1]] += e.deriv[1];
        grad[t[2]] += e.deriv[2];
      }
      out.values[pi] = value;
    }
  });
  return out;
}

PirSingleResponse PirServer::eval_bitsliced(const GF4Vector& q) const {
  const std::size_t n = db_->size();
  const std::size_t k = db_->tag_bits();
  const std::size_t gamma = embedding_->gamma();
  const std::size_t w = db_->words_per_tag();

  // Two bit planes (GF(4) components over basis {1, x}) for the value and
  // for each of the gamma gradient coordinates. Tag rows shard across the
  // pool, each shard XOR-accumulating into its own scratch planes; XOR is
  // exact and commutative, so folding the shards in any order reproduces
  // the serial planes bit for bit.
  struct Planes {
    std::vector<std::uint64_t> v_lo, v_hi, g_lo, g_hi;
  };
  const std::size_t num_shards =
      partition_range(n, resolve_parallelism(parallelism_)).size();
  std::vector<Planes> shards(num_shards);

  auto xor_row = [w](std::uint64_t* dst, const std::uint64_t* src) {
    for (std::size_t j = 0; j < w; ++j) dst[j] ^= src[j];
  };

  parallel_chunks(n, parallelism_, [&](std::size_t shard, std::size_t begin,
                                       std::size_t end) {
    Planes& p = shards[shard];
    p.v_lo.assign(w, 0);
    p.v_hi.assign(w, 0);
    p.g_lo.assign(gamma * w, 0);
    p.g_hi.assign(gamma * w, 0);
    for (std::size_t i = begin; i < end; ++i) {
      const Embedding::Triple t = embedding_->triple(i);
      const MonomialEval e = eval_monomial(q, t);
      const std::uint64_t* row = db_->row(i);
      if (e.mono.value() & 1) xor_row(p.v_lo.data(), row);
      if (e.mono.value() & 2) xor_row(p.v_hi.data(), row);
      for (int d = 0; d < 3; ++d) {
        const GF4 dv = e.deriv[static_cast<std::size_t>(d)];
        if (dv.is_zero()) continue;
        const std::size_t pos = t[static_cast<std::size_t>(d)];
        if (dv.value() & 1) xor_row(p.g_lo.data() + pos * w, row);
        if (dv.value() & 2) xor_row(p.g_hi.data() + pos * w, row);
      }
    }
  });

  std::vector<std::uint64_t> v_lo(w, 0), v_hi(w, 0);
  std::vector<std::uint64_t> g_lo(gamma * w, 0), g_hi(gamma * w, 0);
  for (const Planes& p : shards) {
    for (std::size_t j = 0; j < w; ++j) {
      v_lo[j] ^= p.v_lo[j];
      v_hi[j] ^= p.v_hi[j];
    }
    for (std::size_t j = 0; j < gamma * w; ++j) {
      g_lo[j] ^= p.g_lo[j];
      g_hi[j] ^= p.g_hi[j];
    }
  }

  PirSingleResponse out;
  out.values.assign(k, GF4::zero());
  out.gradients.assign(k, GF4Vector(gamma));
  for (std::size_t pi = 0; pi < k; ++pi) {
    const std::size_t word = pi / 64;
    const std::size_t bit = pi % 64;
    const std::uint8_t lo = (v_lo[word] >> bit) & 1u;
    const std::uint8_t hi = (v_hi[word] >> bit) & 1u;
    out.values[pi] = GF4(static_cast<std::uint8_t>(lo | (hi << 1)));
    GF4Vector& grad = out.gradients[pi];
    for (std::size_t j = 0; j < gamma; ++j) {
      const std::uint8_t glo = (g_lo[j * w + word] >> bit) & 1u;
      const std::uint8_t ghi = (g_hi[j * w + word] >> bit) & 1u;
      grad[j] = GF4(static_cast<std::uint8_t>(glo | (ghi << 1)));
    }
  }
  return out;
}

}  // namespace ice::pir
