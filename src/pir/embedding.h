// Weight-3 Hamming embedding phi : [n] -> {0,1}^gamma.
//
// UserSetup/TPASetup (paper Sec. III-A) fix gamma = ceil((6n)^(1/3)) + 2 and
// embed block indexes as weight-3 points so that each database entry becomes
// a degree-3 monomial of the PIR polynomials F_pi (Eq. 1). Both parties must
// derive the identical embedding from n alone, so the construction is
// deterministic: index i maps to the i-th 3-element subset of [0, gamma) in
// lexicographic order.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "gf/gf4.h"

namespace ice::pir {

/// gamma for a database of n entries: the paper's ceil((6n)^(1/3)) + 2,
/// raised further (never happens for n >= 1 in practice) if C(gamma, 3) < n.
std::size_t gamma_for(std::size_t n);

/// Number of weight-3 points in {0,1}^gamma, i.e. C(gamma, 3).
std::size_t weight3_capacity(std::size_t gamma);

class Embedding {
 public:
  /// Positions of the three set bits, strictly increasing.
  using Triple = std::array<std::uint32_t, 3>;

  /// Embedding for n indexes into {0,1}^gamma_for(n).
  explicit Embedding(std::size_t n);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t gamma() const { return gamma_; }

  /// phi(i) as bit positions. i must be < n (throws ParamError).
  [[nodiscard]] Triple triple(std::size_t i) const;

  /// All n triples, contiguous in index order. The batched PIR sweep
  /// streams this directly (one bounds check per sweep, not per row).
  [[nodiscard]] std::span<const Triple> triples() const { return triples_; }

  /// phi(i) as a 0/1 vector over GF(4), length gamma.
  [[nodiscard]] gf::GF4Vector point(std::size_t i) const;

 private:
  std::size_t n_;
  std::size_t gamma_;
  std::vector<Triple> triples_;  // precomputed lexicographic subsets
};

}  // namespace ice::pir
