// User-side PIR encoding and decoding (paper Alg. 1).
//
// Query: for each wanted index j_l draw z_l uniform in F_4^gamma and send
// phi(j_l) + t_tau * z_l to auditor tau (t_0 = 1, t_1 = x). Decode: the
// restriction g(t) = F_pi(phi(j_l) + t z_l) is a cubic in t; its value and
// directional derivative at the two evaluation points give four linear
// equations, and c_0 = g(0) = F_pi(phi(j_l)) is the wanted tag bit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/random.h"
#include "gf/gf4_matrix.h"
#include "pir/embedding.h"
#include "pir/messages.h"

namespace ice::pir {

class PirClient {
 public:
  static constexpr std::size_t kNumServers = 2;

  /// `embedding` is non-owning and must outlive the client; `tag_bits` is K.
  PirClient(const Embedding& embedding, std::size_t tag_bits);

  struct EncodedQuery {
    PirQuery queries[kNumServers];  // queries[tau] goes to auditor tau
    QuerySecrets secrets;           // stays on the user device
  };

  /// Encodes queries for `indices` (each must be < n).
  [[nodiscard]] EncodedQuery encode(std::span<const std::size_t> indices,
                                    bn::Rng64& rng) const;

  /// Decodes the two auditors' responses into the retrieved tags, in the
  /// order of secrets.indices. Throws ProtocolError on malformed responses.
  [[nodiscard]] std::vector<bn::BigInt> decode(
      const QuerySecrets& secrets, const PirResponse& r0,
      const PirResponse& r1) const;

  [[nodiscard]] std::size_t tag_bits() const { return tag_bits_; }

 private:
  const Embedding* embedding_;
  std::size_t tag_bits_;
  gf::GF4Matrix decode_matrix_inv_;  // M^{-1} from Lemma 2
};

}  // namespace ice::pir
