#include "pir/shard_map.h"

#include <algorithm>
#include <cassert>

#include "common/error.h"

namespace ice::pir {
namespace {

// splitmix64 finalizer: a full-avalanche 64-bit mix, so rendezvous scores
// for (shard, group) pairs behave like independent uniform draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(std::size_t n, std::size_t max_shard_n)
    : max_shard_n_(max_shard_n) {
  const std::size_t shards =
      (max_shard_n == 0 || n == 0) ? 1 : (n + max_shard_n - 1) / max_shard_n;
  ranges_.reserve(shards);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    ranges_.push_back({begin, begin + size});
    begin += size;
  }
  check_invariants();
}

ShardMap::ShardMap(std::vector<ShardRange> ranges, std::uint64_t epoch,
                   std::size_t max_shard_n)
    : ranges_(std::move(ranges)), max_shard_n_(max_shard_n), epoch_(epoch) {
  check_invariants();
}

ShardMap ShardMap::from_sizes(const std::vector<std::size_t>& sizes,
                              std::uint64_t epoch, std::size_t max_shard_n) {
  if (sizes.empty()) {
    throw ParamError("ShardMap::from_sizes: empty size list");
  }
  std::vector<ShardRange> ranges;
  ranges.reserve(sizes.size());
  std::size_t begin = 0;
  for (std::size_t size : sizes) {
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ShardMap(std::move(ranges), epoch, max_shard_n);
}

void ShardMap::check_invariants() const {
  if (ranges_.empty()) {
    throw ParamError("ShardMap: no shards");
  }
  if (ranges_.front().begin != 0) {
    throw ParamError("ShardMap: first shard must start at 0");
  }
  for (std::size_t s = 0; s < ranges_.size(); ++s) {
    if (ranges_[s].end < ranges_[s].begin) {
      throw ParamError("ShardMap: inverted shard range");
    }
    if (s + 1 < ranges_.size() && ranges_[s].end != ranges_[s + 1].begin) {
      throw ParamError("ShardMap: shards must be contiguous");
    }
  }
}

const ShardRange& ShardMap::range(std::size_t shard) const {
  if (shard >= ranges_.size()) {
    throw ParamError("ShardMap::range: shard out of range");
  }
  return ranges_[shard];
}

std::size_t ShardMap::shard_of(std::size_t index) const {
  if (index >= n()) {
    throw ParamError("ShardMap::shard_of: index out of range");
  }
  // First shard whose end exceeds `index`. Empty shards share their `end`
  // with the following shard's `begin` and therefore can never win.
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), index,
      [](std::size_t value, const ShardRange& r) { return value < r.end; });
  assert(it != ranges_.end() && it->contains(index));
  return static_cast<std::size_t>(it - ranges_.begin());
}

std::size_t ShardMap::split(std::size_t s) {
  if (s >= ranges_.size()) {
    throw ParamError("ShardMap::split: shard out of range");
  }
  const ShardRange old = ranges_[s];
  if (old.size() < 2) {
    throw ParamError("ShardMap::split: shard too small to split");
  }
  const std::size_t mid = old.begin + (old.size() + 1) / 2;
  ranges_[s] = {old.begin, mid};
  ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(s) + 1,
                 {mid, old.end});
  ++epoch_;
  check_invariants();
  return s + 1;
}

bool ShardMap::append_index() {
  ++ranges_.back().end;
  ++epoch_;
  bool did_split = false;
  if (max_shard_n_ != 0 && ranges_.back().size() > max_shard_n_) {
    // split() bumps the epoch again; harmless — clients only compare for
    // equality, and one structural change per epoch is merely a lower bound.
    split(ranges_.size() - 1);
    did_split = true;
  }
  check_invariants();
  return did_split;
}

std::uint64_t ShardMap::place(std::uint64_t shard_key,
                              std::span<const std::uint64_t> group_ids) {
  if (group_ids.empty()) {
    throw ParamError("ShardMap::place: empty server-group set");
  }
  std::uint64_t best_id = group_ids.front();
  std::uint64_t best_score = 0;
  bool first = true;
  for (std::uint64_t id : group_ids) {
    const std::uint64_t score = mix64(mix64(shard_key) ^ id);
    if (first || score > best_score ||
        (score == best_score && id < best_id)) {
      best_id = id;
      best_score = score;
      first = false;
    }
  }
  return best_id;
}

std::vector<std::uint64_t> ShardMap::placement(
    std::span<const std::uint64_t> group_ids) const {
  std::vector<std::uint64_t> out;
  out.reserve(ranges_.size());
  for (const ShardRange& r : ranges_) {
    out.push_back(place(static_cast<std::uint64_t>(r.begin), group_ids));
  }
  return out;
}

}  // namespace ice::pir
