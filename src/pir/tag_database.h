// Epoch-versioned fixed-width bit database of verification tags held by
// each TPA.
//
// Tag T_i is a K-bit value (K = |N|, the RSA modulus width). TPASetup turns
// the tag set into K polynomials F_1..F_K over GF(4) — polynomial F_pi has a
// monomial for every i whose pi-th tag bit is set (paper Eq. 1). This class
// stores the bits in two forms:
//   * row-major 64-bit words per tag (for word-parallel/bitsliced eval), and
//   * per-bitplane index lists (the paper's "matrix representation" M_pi).
//
// Dynamic data runs on explicit epochs (DESIGN.md §15). The readable state
// is the epoch-`t` snapshot; `update()` STAGES a replacement row into a
// delta plane that becomes visible only when `close_epoch()` merges it —
// so audits read a frozen database while an update storm accumulates into
// `t+1`, with no writer/reader serialization requirement on the hot path:
//   * readers (bit/tag/row/rows_data/plane) always see the base rows;
//   * `update()` is internally synchronized and touches only the delta, so
//     any number of updates may race any number of readers;
//   * `close_epoch()` copies the dirty rows into the base and merges the
//     changed indexes into a sorted overlay consumed by PlaneView — one
//     O(U·w) memcpy pass instead of a full K-plane rebuild. The CALLER must
//     serialize close_epoch (and add/update_in_place, which edit the base
//     directly) against readers; pir::ShardedTagServer does so with its
//     structure lock.
//
// Plane maintenance replaces the old all-planes invalidation flag: a close
// leaves the built plane lists untouched and instead records which rows
// changed since the last full build. PlaneView iteration skips superseded
// base entries and bit-tests the overlay, costing O(|base| + |overlay|)
// per plane; once the overlay outgrows `n/8` the close pays one amortized
// full rebuild. `build_planes()` remains the benchmarked cold-start path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "bignum/bigint.h"
#include "common/bytes.h"

namespace ice::pir {

class TagDatabase;

/// One bitplane of the matrix representation at the current epoch: the
/// sorted base index list built by the last full plane build, minus entries
/// superseded by rows merged since, plus merged rows whose bit is now set.
/// A cheap value type; valid until the next mutation of the base state
/// (close_epoch / add / update_in_place / build_planes).
class PlaneView {
 public:
  PlaneView(std::span<const std::uint32_t> base,
            std::span<const std::uint32_t> dirty, const TagDatabase* db,
            std::size_t pi)
      : base_(base), dirty_(dirty), db_(db), pi_(pi) {}

  /// Visits every index whose bit `pi` is set, in a deterministic order
  /// (surviving base entries ascending, then overlay entries ascending).
  /// GF(4) accumulation is XOR, so the order never changes an evaluation.
  template <typename F>
  void for_each(F&& f) const {
    if (dirty_.empty()) {
      for (const std::uint32_t i : base_) f(i);
      return;
    }
    std::size_t di = 0;
    for (const std::uint32_t i : base_) {
      while (di < dirty_.size() && dirty_[di] < i) ++di;
      if (di < dirty_.size() && dirty_[di] == i) continue;  // superseded
      f(i);
    }
    for (const std::uint32_t d : dirty_) {
      if (bit_set(d)) f(d);
    }
  }

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// Sorted index list (test/debug surface; eval paths use for_each).
  [[nodiscard]] std::vector<std::uint32_t> materialize() const;

 private:
  [[nodiscard]] bool bit_set(std::uint32_t index) const;

  std::span<const std::uint32_t> base_;
  std::span<const std::uint32_t> dirty_;
  const TagDatabase* db_;
  std::size_t pi_;
};

/// What one close_epoch() did.
struct EpochMergeStats {
  bool closed = false;          // false: nothing staged, epoch unchanged
  std::uint64_t epoch = 0;      // epoch after the call
  std::size_t rows_merged = 0;  // distinct staged rows applied
  bool planes_rebuilt = false;  // overlay crossed the threshold
};

/// Lifetime counters for the epoch engine (read them only while no
/// close_epoch is concurrent — i.e. under the same reader discipline as
/// any other read).
struct EpochStats {
  std::uint64_t epochs_closed = 0;
  std::uint64_t rows_merged = 0;      // cumulative across closes
  std::uint64_t plane_rebuilds = 0;   // threshold-triggered full rebuilds
  std::uint64_t rebuilds_avoided = 0; // closes that merged without one
  std::uint64_t staged_rows = 0;      // currently staged for the next epoch
  std::uint64_t dirty_rows = 0;       // current plane-overlay size
};

class TagDatabase {
 public:
  /// `tag_bits` is K; every stored tag must fit in K bits.
  explicit TagDatabase(std::size_t tag_bits);

  /// Appends a tag (interpreted as a K-bit integer) to the BASE state and
  /// returns its index. Load/rebuild path: the caller must serialize it
  /// against readers (rows_ may reallocate). A warm plane cache is extended
  /// in place — the new index lands at the tail of each set plane — so an
  /// append no longer invalidates the other K-1 bitplanes.
  std::size_t add(const bn::BigInt& tag);

  /// Stages a replacement for the tag at `index` (dynamic data: block
  /// updates re-tag) into the NEXT epoch. Internally synchronized; safe
  /// against concurrent readers and other update() calls. Invisible to
  /// every read surface until close_epoch(). Restaging an index overwrites
  /// its pending row.
  void update(std::size_t index, const bn::BigInt& tag);

  /// Legacy pre-epoch baseline: writes the row directly and drops the whole
  /// plane cache, exactly the old update path. Caller must serialize
  /// against readers. Kept for the bench_updates A/B arm.
  void update_in_place(std::size_t index, const bn::BigInt& tag);

  /// Merges every staged row into the base state and advances the epoch.
  /// Caller must serialize against readers. No-op (closed=false) when
  /// nothing is staged.
  EpochMergeStats close_epoch();

  /// Epochs closed so far (the content version of the readable snapshot).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Distinct rows staged for the next epoch. Internally synchronized.
  [[nodiscard]] std::size_t staged_updates() const;
  /// Staged (index, tag) pairs, insertion-ordered. Used by the sharded
  /// server to carry pending updates across a shard rebuild.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, bn::BigInt>>
  staged_snapshot() const;
  [[nodiscard]] EpochStats epoch_stats() const;

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t tag_bits() const { return tag_bits_; }
  [[nodiscard]] std::size_t words_per_tag() const { return words_per_tag_; }

  /// Numeric bit `pi` of tag `i` (epoch-t snapshot).
  [[nodiscard]] bool bit(std::size_t i, std::size_t pi) const;

  /// Tag `i` reconstructed as an integer (epoch-t snapshot).
  [[nodiscard]] bn::BigInt tag(std::size_t i) const;

  /// Row of 64-bit words (little-endian bit order) for tag `i`. Inline: the
  /// per-row eval paths call this n times per query point.
  [[nodiscard]] const std::uint64_t* row(std::size_t i) const {
    return rows_.data() + i * words_per_tag_;
  }

  /// All rows, contiguous (row i at offset i * words_per_tag()). The fused
  /// batch sweep streams this once per query batch.
  [[nodiscard]] const std::uint64_t* rows_data() const {
    return rows_.data();
  }

  /// The paper's matrix representation for bitplane `pi` at the current
  /// epoch. Built lazily on first use ("pre-processing once the tags are
  /// generated"); safe to call from concurrent readers (the parallel PIR
  /// evaluation shards bitplanes across pool workers).
  [[nodiscard]] PlaneView plane(std::size_t pi) const;

  /// Forces (re)construction of all bitplane lists; returns build time in
  /// seconds. Exposed so benchmarks can measure TPASetup preprocessing.
  /// Caller must serialize against readers (it swaps the plane arrays).
  double build_planes() const;

  /// Drops the plane cache so the next plane() pays a cold build. Bench
  /// hook (the measured legacy-invalidation arm); caller serializes.
  void invalidate_planes() const;

 private:
  friend class PlaneView;

  void build_planes_locked() const;  // caller holds planes_mu_
  [[nodiscard]] std::size_t rebuild_threshold() const {
    return std::max<std::size_t>(64, n_ / 8);
  }

  std::size_t tag_bits_;
  std::size_t words_per_tag_;
  std::size_t n_ = 0;
  std::vector<std::uint64_t> rows_;  // n_ * words_per_tag_

  // Delta plane: rows staged for epoch_ + 1. Guarded by delta_mu_ (staging
  // races readers and other staging; close_epoch drains it under the
  // caller's exclusivity plus this lock).
  mutable std::mutex delta_mu_;
  std::vector<std::uint32_t> staged_index_;            // insertion order
  std::vector<std::uint64_t> staged_rows_;             // slot-major rows
  std::unordered_map<std::uint32_t, std::size_t> staged_slot_;

  mutable std::mutex planes_mu_;  // guards the lazy plane build
  mutable std::vector<std::vector<std::uint32_t>> planes_;  // K lists
  mutable std::atomic<bool> planes_built_{false};
  // Sorted indexes whose rows changed since the last full plane build (the
  // PlaneView overlay). Mutated only under the caller's exclusivity.
  mutable std::vector<std::uint32_t> plane_dirty_;

  std::uint64_t epoch_ = 0;
  EpochStats stats_;  // cumulative counters (staged/dirty derived live)
};

}  // namespace ice::pir
