// Fixed-width bit database of verification tags held by each TPA.
//
// Tag T_i is a K-bit value (K = |N|, the RSA modulus width). TPASetup turns
// the tag set into K polynomials F_1..F_K over GF(4) — polynomial F_pi has a
// monomial for every i whose pi-th tag bit is set (paper Eq. 1). This class
// stores the bits in two forms:
//   * row-major 64-bit words per tag (for word-parallel/bitsliced eval), and
//   * per-bitplane index lists (the paper's "matrix representation" M_pi).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "bignum/bigint.h"
#include "common/bytes.h"

namespace ice::pir {

class TagDatabase {
 public:
  /// `tag_bits` is K; every stored tag must fit in K bits.
  explicit TagDatabase(std::size_t tag_bits);

  /// Appends a tag (interpreted as a K-bit integer). Returns its index.
  std::size_t add(const bn::BigInt& tag);

  /// Replaces the tag at `index` (dynamic data: block updates re-tag).
  void update(std::size_t index, const bn::BigInt& tag);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t tag_bits() const { return tag_bits_; }
  [[nodiscard]] std::size_t words_per_tag() const { return words_per_tag_; }

  /// Numeric bit `pi` of tag `i`.
  [[nodiscard]] bool bit(std::size_t i, std::size_t pi) const;

  /// Tag `i` reconstructed as an integer.
  [[nodiscard]] bn::BigInt tag(std::size_t i) const;

  /// Row of 64-bit words (little-endian bit order) for tag `i`. Inline: the
  /// per-row eval paths call this n times per query point.
  [[nodiscard]] const std::uint64_t* row(std::size_t i) const {
    return rows_.data() + i * words_per_tag_;
  }

  /// All rows, contiguous (row i at offset i * words_per_tag()). The fused
  /// batch sweep streams this once per query batch.
  [[nodiscard]] const std::uint64_t* rows_data() const {
    return rows_.data();
  }

  /// The paper's matrix representation: for bitplane `pi`, the list of tag
  /// indexes whose pi-th bit is 1 (rows of M_pi). Built lazily on first use
  /// after any mutation ("pre-processing once the tags are generated").
  /// Safe to call from concurrent readers (the parallel PIR evaluation
  /// shards bitplanes across pool workers); mutations (add/update) must
  /// still be externally serialized against readers.
  [[nodiscard]] const std::vector<std::uint32_t>& plane(std::size_t pi) const;

  /// Forces (re)construction of all bitplane lists; returns build time in
  /// seconds. Exposed so benchmarks can measure TPASetup preprocessing.
  double build_planes() const;

 private:
  void build_planes_locked() const;  // caller holds planes_mu_

  std::size_t tag_bits_;
  std::size_t words_per_tag_;
  std::size_t n_ = 0;
  std::vector<std::uint64_t> rows_;  // n_ * words_per_tag_
  mutable std::mutex planes_mu_;     // guards the lazy plane build
  mutable std::vector<std::vector<std::uint32_t>> planes_;  // K lists
  mutable std::atomic<bool> planes_valid_{false};
};

}  // namespace ice::pir
