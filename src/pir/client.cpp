#include "pir/client.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.h"

namespace ice::pir {

namespace {

using gf::GF4;
using gf::GF4Matrix;
using gf::GF4Vector;

// Interpolation matrix M mapping (c0, c1, c2, c3) to
// (g(1), g'(1), g(x), g'(x)) over GF(4), characteristic 2:
//   g(t)  = c0 + c1 t + c2 t^2 + c3 t^3
//   g'(t) = c1 + c3 t^2            (2 c2 t vanishes, 3 c3 = c3)
// With x^2 = x + 1 (= 3) and x^3 = 1.
GF4Matrix decode_matrix() {
  return GF4Matrix({
      {1, 1, 1, 1},
      {0, 1, 0, 1},
      {1, 2, 3, 1},
      {0, 1, 0, 3},
  });
}

// Gathers the LSB of each of the eight bytes of x into the low byte of the
// result (bit i <- byte i). Product positions 8i + (56 - 7j) are pairwise
// distinct, so the multiply is carry-free.
inline std::uint64_t gather_lsb(std::uint64_t x) {
  return ((x & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56;
}

// Folds z into one entry's coordinate-major gradients: after the call, bit
// pi of (acc_lo, acc_hi) holds the {1, x} components of <grad F_pi, z>.
// Per coordinate j, the K gradient bytes pack into component bitmasks
// eight elements at a time (carry-free multiply gather), and z_j scatters
// into both accumulators with three AND/XOR word ops —
// (a0+a1x)(b0+b1x) = (a0b0^a1b1) + (a0b1^a1b0^a1b1)x — so the dot fold
// runs word-parallel across 64 bitplanes at once instead of
// element-by-element per plane.
void fold_gradients(const std::vector<GF4Vector>& grads, const GF4Vector& z,
                    std::size_t k, std::uint64_t* acc_lo,
                    std::uint64_t* acc_hi) {
  const std::size_t gamma = z.size();
  for (std::size_t j = 0; j < gamma; ++j) {
    const std::uint8_t zv = z[j].value();
    if (zv == 0) continue;  // a zero coordinate contributes nothing
    const std::uint64_t mzl = 0 - static_cast<std::uint64_t>(zv & 1u);
    const std::uint64_t mzh = 0 - static_cast<std::uint64_t>((zv >> 1) & 1u);
    const GF4* const g = grads[j].data();
    for (std::size_t base = 0, word = 0; base < k; base += 64, ++word) {
      const std::size_t lim = std::min<std::size_t>(64, k - base);
      std::uint64_t glo = 0, ghi = 0;
      std::size_t b = 0;
      if (std::endian::native == std::endian::little) {
        for (; b + 8 <= lim; b += 8) {
          std::uint64_t bytes;
          std::memcpy(&bytes, g + base + b, 8);
          glo |= gather_lsb(bytes) << b;
          ghi |= gather_lsb(bytes >> 1) << b;
        }
      }
      for (; b < lim; ++b) {
        const auto v = static_cast<std::uint64_t>(g[base + b].value());
        glo |= (v & 1) << b;
        ghi |= (v >> 1) << b;
      }
      acc_lo[word] ^= (glo & mzl) ^ (ghi & mzh);
      acc_hi[word] ^= (glo & mzh) ^ (ghi & mzl) ^ (ghi & mzh);
    }
  }
}

}  // namespace

PirClient::PirClient(const Embedding& embedding, std::size_t tag_bits)
    : embedding_(&embedding),
      tag_bits_(tag_bits),
      decode_matrix_inv_(decode_matrix().inverse()) {
  if (tag_bits == 0) throw ParamError("PirClient: tag_bits must be >= 1");
}

PirClient::EncodedQuery PirClient::encode(
    std::span<const std::size_t> indices, bn::Rng64& rng) const {
  const std::size_t gamma = embedding_->gamma();
  EncodedQuery out;
  out.secrets.indices.assign(indices.begin(), indices.end());
  out.secrets.z.reserve(indices.size());
  const GF4 t_tau[kNumServers] = {GF4::one(), GF4::x()};
  // z_l uniform in F_4^gamma: 2 random bits per coordinate, drawn from a
  // bit pool that persists across coordinates AND indices. A refill keeps
  // any leftover bit instead of discarding it (low component first), so
  // encode consumes exactly ceil(2 * gamma * count / 64) RNG words — pinned
  // by the determinism test in tests/pir/client_codec_test.cpp.
  std::uint64_t pool = 0;
  std::size_t pool_bits = 0;
  const auto next_gf4 = [&]() -> GF4 {
    std::uint8_t v;
    if (pool_bits == 0) {
      pool = rng.next_u64();
      pool_bits = 64;
    }
    if (pool_bits == 1) {
      const auto leftover = static_cast<std::uint8_t>(pool & 0x1);
      pool = rng.next_u64();
      v = static_cast<std::uint8_t>(leftover | ((pool & 0x1) << 1));
      pool >>= 1;
      pool_bits = 63;
    } else {
      v = static_cast<std::uint8_t>(pool & 0x3);
      pool >>= 2;
      pool_bits -= 2;
    }
    return GF4(v);
  };
  for (std::size_t idx : indices) {
    const GF4Vector phi = embedding_->point(idx);  // range-checks idx
    GF4Vector z(gamma);
    for (auto& coord : z) coord = next_gf4();
    for (std::size_t tau = 0; tau < kNumServers; ++tau) {
      out.queries[tau].points.push_back(gf::axpy(phi, t_tau[tau], z));
    }
    out.secrets.z.push_back(std::move(z));
  }
  return out;
}

std::vector<bn::BigInt> PirClient::decode(const QuerySecrets& secrets,
                                          const PirResponse& r0,
                                          const PirResponse& r1) const {
  const std::size_t count = secrets.indices.size();
  if (r0.entries.size() != count || r1.entries.size() != count ||
      secrets.z.size() != count) {
    throw ProtocolError("PirClient::decode: response count mismatch");
  }
  const std::size_t gamma = embedding_->gamma();
  std::vector<bn::BigInt> tags;
  tags.reserve(count);
  const std::size_t kw = (tag_bits_ + 63) / 64;
  std::vector<std::uint64_t> words(kw);
  // Per-server packed dot planes, reused across points: bit pi of
  // (d*_lo, d*_hi) holds the {1, x} components of <grad F_pi, z> — the
  // gradient folds run word-parallel over all K bitplanes in
  // fold_gradients instead of one dot product per plane.
  std::vector<std::uint64_t> d0_lo(kw), d0_hi(kw), d1_lo(kw), d1_hi(kw);
  GF4Vector u(4);
  for (std::size_t l = 0; l < count; ++l) {
    const PirSingleResponse& e0 = r0.entries[l];
    const PirSingleResponse& e1 = r1.entries[l];
    if (e0.values.size() != tag_bits_ || e1.values.size() != tag_bits_ ||
        e0.gradients.size() != gamma || e1.gradients.size() != gamma) {
      throw ProtocolError("PirClient::decode: response shape mismatch");
    }
    for (std::size_t j = 0; j < gamma; ++j) {
      if (e0.gradients[j].size() != tag_bits_ ||
          e1.gradients[j].size() != tag_bits_) {
        throw ProtocolError("PirClient::decode: gradient dim mismatch");
      }
    }
    const GF4Vector& z = secrets.z[l];
    if (z.size() != gamma) {
      throw ProtocolError("PirClient::decode: secret dim mismatch");
    }
    std::fill(d0_lo.begin(), d0_lo.end(), 0);
    std::fill(d0_hi.begin(), d0_hi.end(), 0);
    std::fill(d1_lo.begin(), d1_lo.end(), 0);
    std::fill(d1_hi.begin(), d1_hi.end(), 0);
    fold_gradients(e0.gradients, z, tag_bits_, d0_lo.data(), d0_hi.data());
    fold_gradients(e1.gradients, z, tag_bits_, d1_lo.data(), d1_hi.data());
    std::fill(words.begin(), words.end(), 0);
    for (std::size_t pi = 0; pi < tag_bits_; ++pi) {
      const std::size_t word = pi / 64;
      const std::size_t sh = pi % 64;
      u[0] = e0.values[pi];
      u[1] = GF4(static_cast<std::uint8_t>(((d0_lo[word] >> sh) & 1u) |
                                           (((d0_hi[word] >> sh) & 1u)
                                            << 1)));
      u[2] = e1.values[pi];
      u[3] = GF4(static_cast<std::uint8_t>(((d1_lo[word] >> sh) & 1u) |
                                           (((d1_hi[word] >> sh) & 1u)
                                            << 1)));
      const GF4 bit = decode_matrix_inv_.mul(u)[0];
      if (bit.value() > 1) {
        throw ProtocolError("PirClient::decode: non-boolean decoded bit");
      }
      if (bit.value() == 1) {
        words[pi / 64] |= std::uint64_t{1} << (pi % 64);
      }
    }
    tags.push_back(bn::BigInt::from_limbs(words));
  }
  return tags;
}

}  // namespace ice::pir
