#include "pir/client.h"

#include "common/error.h"

namespace ice::pir {

namespace {

using gf::GF4;
using gf::GF4Matrix;
using gf::GF4Vector;

// Interpolation matrix M mapping (c0, c1, c2, c3) to
// (g(1), g'(1), g(x), g'(x)) over GF(4), characteristic 2:
//   g(t)  = c0 + c1 t + c2 t^2 + c3 t^3
//   g'(t) = c1 + c3 t^2            (2 c2 t vanishes, 3 c3 = c3)
// With x^2 = x + 1 (= 3) and x^3 = 1.
GF4Matrix decode_matrix() {
  return GF4Matrix({
      {1, 1, 1, 1},
      {0, 1, 0, 1},
      {1, 2, 3, 1},
      {0, 1, 0, 3},
  });
}

}  // namespace

PirClient::PirClient(const Embedding& embedding, std::size_t tag_bits)
    : embedding_(&embedding),
      tag_bits_(tag_bits),
      decode_matrix_inv_(decode_matrix().inverse()) {
  if (tag_bits == 0) throw ParamError("PirClient: tag_bits must be >= 1");
}

PirClient::EncodedQuery PirClient::encode(
    std::span<const std::size_t> indices, bn::Rng64& rng) const {
  const std::size_t gamma = embedding_->gamma();
  EncodedQuery out;
  out.secrets.indices.assign(indices.begin(), indices.end());
  out.secrets.z.reserve(indices.size());
  const GF4 t_tau[kNumServers] = {GF4::one(), GF4::x()};
  for (std::size_t idx : indices) {
    const GF4Vector phi = embedding_->point(idx);  // range-checks idx
    // z_l uniform in F_4^gamma: 2 random bits per coordinate.
    GF4Vector z(gamma);
    std::uint64_t pool = 0;
    std::size_t pool_bits = 0;
    for (auto& coord : z) {
      if (pool_bits < 2) {
        pool = rng.next_u64();
        pool_bits = 64;
      }
      coord = GF4(static_cast<std::uint8_t>(pool & 0x3));
      pool >>= 2;
      pool_bits -= 2;
    }
    for (std::size_t tau = 0; tau < kNumServers; ++tau) {
      out.queries[tau].points.push_back(gf::axpy(phi, t_tau[tau], z));
    }
    out.secrets.z.push_back(std::move(z));
  }
  return out;
}

std::vector<bn::BigInt> PirClient::decode(const QuerySecrets& secrets,
                                          const PirResponse& r0,
                                          const PirResponse& r1) const {
  const std::size_t count = secrets.indices.size();
  if (r0.entries.size() != count || r1.entries.size() != count ||
      secrets.z.size() != count) {
    throw ProtocolError("PirClient::decode: response count mismatch");
  }
  const std::size_t gamma = embedding_->gamma();
  std::vector<bn::BigInt> tags;
  tags.reserve(count);
  std::vector<std::uint64_t> words((tag_bits_ + 63) / 64);
  for (std::size_t l = 0; l < count; ++l) {
    const PirSingleResponse& e0 = r0.entries[l];
    const PirSingleResponse& e1 = r1.entries[l];
    if (e0.values.size() != tag_bits_ || e1.values.size() != tag_bits_ ||
        e0.gradients.size() != tag_bits_ ||
        e1.gradients.size() != tag_bits_) {
      throw ProtocolError("PirClient::decode: bitplane count mismatch");
    }
    const GF4Vector& z = secrets.z[l];
    std::fill(words.begin(), words.end(), 0);
    for (std::size_t pi = 0; pi < tag_bits_; ++pi) {
      if (e0.gradients[pi].size() != gamma ||
          e1.gradients[pi].size() != gamma) {
        throw ProtocolError("PirClient::decode: gradient dim mismatch");
      }
      const GF4Vector u = {e0.values[pi], gf::dot(e0.gradients[pi], z),
                           e1.values[pi], gf::dot(e1.gradients[pi], z)};
      const GF4 bit = decode_matrix_inv_.mul(u)[0];
      if (bit.value() > 1) {
        throw ProtocolError("PirClient::decode: non-boolean decoded bit");
      }
      if (bit.value() == 1) {
        words[pi / 64] |= std::uint64_t{1} << (pi % 64);
      }
    }
    tags.push_back(bn::BigInt::from_limbs(words));
  }
  return tags;
}

}  // namespace ice::pir
