// Wire-level message structures for the 2-server private tag retrieval.
//
// The ICE layer serializes these through net/serde; the structures also
// report their exact packed size so the communication-cost experiments
// (paper Tab. I, Fig. 8) can account bits without a transport in the loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "gf/gf4.h"

namespace ice::pir {

/// Query to one TPA: one perturbed point phi(j_l) + t_tau * z_l per
/// requested index (paper Alg. 1, "User: tag query").
struct PirQuery {
  std::vector<gf::GF4Vector> points;

  [[nodiscard]] std::size_t size() const { return points.size(); }
};

/// Response entry for one queried point: F_pi(q) for every bitplane pi and
/// the gradient (partial derivatives) of each F_pi at q. Gradients are
/// coordinate-major — gradients[j][pi] is dF_pi/dx_j — matching the
/// server's accumulator planes (contiguous unpack) and letting the client
/// fold z_j into all K bitplanes word-parallel during decode.
struct PirSingleResponse {
  gf::GF4Vector values;                   // length K
  std::vector<gf::GF4Vector> gradients;   // gamma entries, each length K
};

/// Full response from one TPA (paper Alg. 1, "Auditor tau: tag response").
struct PirResponse {
  std::vector<PirSingleResponse> entries;  // one per queried point
};

/// Client-side secrets needed to decode: the random directions z_l and the
/// queried indexes. Never leaves the user device.
struct QuerySecrets {
  std::vector<std::size_t> indices;
  std::vector<gf::GF4Vector> z;
};

/// One shard's slice of a sharded query: the points of the challenge that
/// fall inside that shard's range, encoded against the SHARD's embedding
/// (shard-local indexes, shard-sized gamma).
struct ShardQuery {
  std::uint32_t shard = 0;
  PirQuery query;
};

/// Cross-shard fan-out query to one TPA. `epoch` pins the shard map the
/// client planned against: the server rejects a mismatch with a typed
/// kFailedPrecondition instead of decoding against the wrong embedding.
/// Shard ids must be strictly increasing (canonical form; also what the
/// planner emits, so the 1-shard encoding is byte-identical to PirQuery
/// plus the envelope).
struct ShardedPirQuery {
  std::uint64_t epoch = 0;
  std::vector<ShardQuery> shards;

  [[nodiscard]] std::size_t total_points() const {
    std::size_t m = 0;
    for (const auto& s : shards) m += s.query.size();
    return m;
  }
};

/// One shard's partial response (same order/shape as the sub-query).
struct ShardResponse {
  std::uint32_t shard = 0;
  PirResponse response;
};

/// Merged-by-the-client fan-out response: one partial per queried shard,
/// in the query's shard order.
struct ShardedPirResponse {
  std::vector<ShardResponse> shards;
};

/// Exact packed wire size in bits (GF(4) elements cost 2 bits each).
std::size_t wire_bits(const PirQuery& q);
std::size_t wire_bits(const PirResponse& r);
std::size_t wire_bits(const ShardedPirQuery& q);
std::size_t wire_bits(const ShardedPirResponse& r);

/// Packs a GF(4) vector, 4 elements per byte.
Bytes pack_gf4(const gf::GF4Vector& v);
/// Destination-passing pack: overwrites `out`, reusing its capacity.
void pack_gf4_into(const gf::GF4Vector& v, Bytes& out);
/// Unpacks `count` GF(4) elements.
gf::GF4Vector unpack_gf4(BytesView data, std::size_t count);
/// Destination-passing unpack: overwrites `out`, reusing its capacity.
void unpack_gf4_into(BytesView data, std::size_t count, gf::GF4Vector& out);

}  // namespace ice::pir
