#include "pir/messages.h"

#include "common/error.h"

namespace ice::pir {

std::size_t wire_bits(const PirQuery& q) {
  std::size_t bits = 0;
  for (const auto& p : q.points) bits += 2 * p.size();
  return bits;
}

std::size_t wire_bits(const PirResponse& r) {
  std::size_t bits = 0;
  for (const auto& e : r.entries) {
    bits += 2 * e.values.size();
    for (const auto& g : e.gradients) bits += 2 * g.size();
  }
  return bits;
}

std::size_t wire_bits(const ShardedPirQuery& q) {
  // 64-bit epoch + a 32-bit shard id and 32-bit point count per shard.
  std::size_t bits = 64;
  for (const auto& s : q.shards) bits += 64 + wire_bits(s.query);
  return bits;
}

std::size_t wire_bits(const ShardedPirResponse& r) {
  std::size_t bits = 0;
  for (const auto& s : r.shards) bits += 64 + wire_bits(s.response);
  return bits;
}

Bytes pack_gf4(const gf::GF4Vector& v) {
  Bytes out;
  pack_gf4_into(v, out);
  return out;
}

void pack_gf4_into(const gf::GF4Vector& v, Bytes& out) {
  out.assign((v.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i / 4] |= static_cast<std::uint8_t>(v[i].value() << (2 * (i % 4)));
  }
}

gf::GF4Vector unpack_gf4(BytesView data, std::size_t count) {
  gf::GF4Vector out;
  unpack_gf4_into(data, count, out);
  return out;
}

void unpack_gf4_into(BytesView data, std::size_t count, gf::GF4Vector& out) {
  if (data.size() < (count + 3) / 4) {
    throw CodecError("unpack_gf4: buffer too short");
  }
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] =
        gf::GF4(static_cast<std::uint8_t>(data[i / 4] >> (2 * (i % 4))));
  }
}

}  // namespace ice::pir
