// Range-sharded partition of the tag index space.
//
// One `pir::TagDatabase` per TPA pair caps the number of outsourced blocks
// n at whatever a single fused sweep can hold in cache, and every PIR cost
// (TPASetup preprocessing, per-query sweep volume, gamma = (6n)^(1/3) + 2)
// scales with that one monolithic bit-matrix. The ShardMap partitions
// [0, n) into contiguous range shards so each shard runs the existing
// fused cache-blocked sweep over its own (smaller) database and embedding:
// a |S_j|-point challenge is routed to only the shards its indexes touch,
// and within a shard a point costs a sweep over n_s rows instead of n.
//
// Invariants (checked on every construction and mutation):
//   * ranges are contiguous and ascending: ranges[0].begin == 0,
//     ranges[s].end == ranges[s+1].begin, ranges.back().end == n;
//   * empty shards are representable (split of a 2-element shard after an
//     append can leave one) but `shard_of` never routes to one;
//   * `epoch` increments on EVERY structural change (split or append):
//     per-shard embeddings are derived from shard sizes, so a stale client
//     plan must be detectable — the wire layer turns an epoch mismatch into
//     a typed kFailedPrecondition instead of a garbage decode.
//
// Placement: `place` is rendezvous (highest-random-weight) hashing of a
// shard key over a server-group id set — each shard lands on the group with
// the maximal mixed score, so adding or removing one of k groups moves only
// the ~1/k of shards whose maximum changes (pinned by the stability test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ice::pir {

/// Half-open global index range [begin, end) owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool contains(std::size_t index) const {
    return index >= begin && index < end;
  }
  friend bool operator==(const ShardRange&, const ShardRange&) = default;
};

class ShardMap {
 public:
  /// Balanced initial partition of [0, n) into ceil(n / max_shard_n)
  /// contiguous shards (front shards take the remainder, mirroring
  /// common/parallel.h chunk_bounds). `max_shard_n` = 0 means unsharded:
  /// one shard covering everything — the paper's monolithic layout.
  explicit ShardMap(std::size_t n, std::size_t max_shard_n = 0);

  /// Reconstructs a map from per-shard sizes (the wire form) at a given
  /// epoch. Throws ParamError when `sizes` is empty.
  static ShardMap from_sizes(const std::vector<std::size_t>& sizes,
                             std::uint64_t epoch,
                             std::size_t max_shard_n = 0);

  [[nodiscard]] std::size_t n() const { return ranges_.back().end; }
  [[nodiscard]] std::size_t num_shards() const { return ranges_.size(); }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t max_shard_n() const { return max_shard_n_; }
  [[nodiscard]] const ShardRange& range(std::size_t shard) const;
  [[nodiscard]] const std::vector<ShardRange>& ranges() const {
    return ranges_;
  }

  /// Shard covering global `index` (binary search over the range table).
  /// Throws ParamError for index >= n. Never returns an empty shard.
  [[nodiscard]] std::size_t shard_of(std::size_t index) const;

  /// Splits shard `s` into two contiguous halves (lower half takes the
  /// extra element of an odd size); the new upper shard is s + 1 and every
  /// later shard shifts up by one. Bumps the epoch. Throws ParamError when
  /// s is out of range or has fewer than 2 entries.
  std::size_t split(std::size_t s);

  /// Appends one index to the tail shard (n grows by one) and splits the
  /// tail when it exceeds max_shard_n (0 = never). Bumps the epoch either
  /// way — the tail shard's size, hence its embedding, changed. Returns
  /// true when the append triggered a split.
  bool append_index();

  /// Content-epoch bump with no structural change: an epoch close that
  /// merged staged rows changed tag values (hence correct proofs), so a
  /// client plan minted before the close must be detectably stale even
  /// though every range is unchanged. DESIGN.md §15.
  void bump_epoch() { ++epoch_; }

  /// Rendezvous placement: the id in `group_ids` whose mixed score with
  /// `shard_key` is highest (ties break toward the smaller id). Throws
  /// ParamError on an empty group set.
  [[nodiscard]] static std::uint64_t place(
      std::uint64_t shard_key, std::span<const std::uint64_t> group_ids);

  /// Placement of every shard over `group_ids` (shard key = range begin,
  /// stable for the lower half across splits).
  [[nodiscard]] std::vector<std::uint64_t> placement(
      std::span<const std::uint64_t> group_ids) const;

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

 private:
  ShardMap(std::vector<ShardRange> ranges, std::uint64_t epoch,
           std::size_t max_shard_n);
  void check_invariants() const;

  std::vector<ShardRange> ranges_;  // never empty
  std::size_t max_shard_n_ = 0;     // 0 = unbounded
  std::uint64_t epoch_ = 0;
};

}  // namespace ice::pir
