// TPA-side PIR evaluation (paper Alg. 1, "Auditor tau: tag response").
//
// For each queried point q the server evaluates all K bitplane polynomials
// F_pi(q) and their gradients. Three interchangeable strategies implement
// the same math:
//
//   kNaive     — term-by-term evaluation multiplying every monomial by its
//                0/1 coefficient; this is the paper's Fig. 2 "micro
//                benchmark without the matrix representation".
//   kMatrix    — the paper's matrix representation M_pi: zero coefficients
//                are skipped via per-bitplane index lists and the monomial /
//                derivative values are computed once per query, then reused
//                across all K bitplanes.
//   kBitsliced — our ablation: the kMatrix recurrence transposed so that one
//                tag row (K bits, packed in 64-bit words) is XOR-accumulated
//                word-parallel into two GF(4) component bitplanes.
#pragma once

#include <cstdint>
#include <vector>

#include "pir/embedding.h"
#include "pir/messages.h"
#include "pir/tag_database.h"

namespace ice::pir {

enum class EvalStrategy { kNaive, kMatrix, kBitsliced };

class PirServer {
 public:
  /// Non-owning views of the database and embedding; both must outlive the
  /// server and agree on n. `parallelism` is the worker-shard budget for
  /// each evaluation (ProtocolParams::parallelism convention: 0 = hardware
  /// concurrency, 1 = the exact single-threaded legacy path); every
  /// strategy returns bit-identical responses at every setting.
  PirServer(const TagDatabase& db, const Embedding& embedding,
            EvalStrategy strategy = EvalStrategy::kBitsliced,
            std::size_t parallelism = 1);

  /// Evaluates all bitplanes and gradients at one query point. This is the
  /// reference path: the fused batch engine below is pinned bit-identical
  /// to a respond_one loop by the differential tests.
  [[nodiscard]] PirSingleResponse respond_one(const gf::GF4Vector& q) const;

  /// Evaluates a whole query batch in ONE pass over the tag database: for
  /// each row the per-point monomial evaluations are computed once and
  /// scatter-accumulated into per-point planes (m-way accumulation instead
  /// of m full sweeps). Bit-identical to looping respond_one over the
  /// points, at every strategy and parallelism setting.
  [[nodiscard]] PirResponse respond(const PirQuery& query) const;

  /// In-place respond(): reshapes `out` without discarding its entry and
  /// plane-vector capacity, so a warm response object (same m, k, gamma as
  /// the previous call) makes the steady-state batch sweep allocation-free.
  void respond_into(const PirQuery& query, PirResponse& out) const;

  [[nodiscard]] EvalStrategy strategy() const { return strategy_; }

 private:
  [[nodiscard]] PirSingleResponse eval_naive(const gf::GF4Vector& q) const;
  [[nodiscard]] PirSingleResponse eval_matrix(const gf::GF4Vector& q) const;
  [[nodiscard]] PirSingleResponse eval_bitsliced(
      const gf::GF4Vector& q) const;

  void eval_naive_batch(const std::vector<gf::GF4Vector>& qs,
                        PirResponse& out) const;
  void eval_matrix_batch(const std::vector<gf::GF4Vector>& qs,
                         PirResponse& out) const;
  void eval_bitsliced_batch(const std::vector<gf::GF4Vector>& qs,
                            PirResponse& out) const;

  const TagDatabase* db_;
  const Embedding* embedding_;
  EvalStrategy strategy_;
  std::size_t parallelism_;
};

}  // namespace ice::pir
