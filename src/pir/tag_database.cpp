#include "pir/tag_database.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/stopwatch.h"

namespace ice::pir {

std::size_t PlaneView::size() const {
  std::size_t count = 0;
  for_each([&count](std::uint32_t) { ++count; });
  return count;
}

std::vector<std::uint32_t> PlaneView::materialize() const {
  std::vector<std::uint32_t> out;
  out.reserve(base_.size() + dirty_.size());
  for_each([&out](std::uint32_t i) { out.push_back(i); });
  std::sort(out.begin(), out.end());
  return out;
}

bool PlaneView::bit_set(std::uint32_t index) const {
  return db_->bit(index, pi_);
}

TagDatabase::TagDatabase(std::size_t tag_bits)
    : tag_bits_(tag_bits), words_per_tag_((tag_bits + 63) / 64) {
  if (tag_bits == 0) throw ParamError("TagDatabase: tag_bits must be >= 1");
}

std::size_t TagDatabase::add(const bn::BigInt& tag) {
  if (tag.is_negative() || tag.bit_length() > tag_bits_) {
    throw ParamError("TagDatabase::add: tag out of range for K bits");
  }
  rows_.resize(rows_.size() + words_per_tag_, 0);
  std::uint64_t* dst = rows_.data() + n_ * words_per_tag_;
  const auto& limbs = tag.limbs();
  for (std::size_t w = 0; w < limbs.size(); ++w) dst[w] = limbs[w];
  // Extend a warm plane cache in place: the new index is larger than every
  // existing one, so appending keeps each plane list sorted and the overlay
  // untouched. (Pre-epoch behavior was to invalidate all K planes here.)
  if (planes_built_.load(std::memory_order_acquire)) {
    std::lock_guard lock(planes_mu_);
    for (std::size_t w = 0; w < words_per_tag_; ++w) {
      std::uint64_t word = dst[w];
      while (word) {
        const auto b = static_cast<std::size_t>(__builtin_ctzll(word));
        const std::size_t pi = w * 64 + b;
        if (pi < tag_bits_) {
          planes_[pi].push_back(static_cast<std::uint32_t>(n_));
        }
        word &= word - 1;
      }
    }
  }
  return n_++;
}

void TagDatabase::update(std::size_t index, const bn::BigInt& tag) {
  if (index >= n_) throw ParamError("TagDatabase::update: bad index");
  if (tag.is_negative() || tag.bit_length() > tag_bits_) {
    throw ParamError("TagDatabase::update: tag out of range for K bits");
  }
  std::lock_guard lock(delta_mu_);
  const auto idx32 = static_cast<std::uint32_t>(index);
  auto [it, inserted] = staged_slot_.try_emplace(idx32, staged_index_.size());
  if (inserted) {
    staged_index_.push_back(idx32);
    staged_rows_.resize(staged_rows_.size() + words_per_tag_, 0);
  }
  std::uint64_t* dst = staged_rows_.data() + it->second * words_per_tag_;
  for (std::size_t w = 0; w < words_per_tag_; ++w) dst[w] = 0;
  const auto& limbs = tag.limbs();
  for (std::size_t w = 0; w < limbs.size(); ++w) dst[w] = limbs[w];
}

void TagDatabase::update_in_place(std::size_t index, const bn::BigInt& tag) {
  if (index >= n_) throw ParamError("TagDatabase::update: bad index");
  if (tag.is_negative() || tag.bit_length() > tag_bits_) {
    throw ParamError("TagDatabase::update: tag out of range for K bits");
  }
  std::uint64_t* dst = rows_.data() + index * words_per_tag_;
  for (std::size_t w = 0; w < words_per_tag_; ++w) dst[w] = 0;
  const auto& limbs = tag.limbs();
  for (std::size_t w = 0; w < limbs.size(); ++w) dst[w] = limbs[w];
  planes_built_.store(false, std::memory_order_release);
}

EpochMergeStats TagDatabase::close_epoch() {
  std::lock_guard delta_lock(delta_mu_);
  EpochMergeStats out;
  out.epoch = epoch_;
  if (staged_index_.empty()) return out;

  for (std::size_t slot = 0; slot < staged_index_.size(); ++slot) {
    std::memcpy(rows_.data() + staged_index_[slot] * words_per_tag_,
                staged_rows_.data() + slot * words_per_tag_,
                words_per_tag_ * sizeof(std::uint64_t));
  }
  out.rows_merged = staged_index_.size();

  if (planes_built_.load(std::memory_order_acquire)) {
    std::vector<std::uint32_t> merged = staged_index_;
    std::sort(merged.begin(), merged.end());
    if (plane_dirty_.empty()) {
      plane_dirty_ = std::move(merged);
    } else {
      std::vector<std::uint32_t> unioned;
      unioned.reserve(plane_dirty_.size() + merged.size());
      std::set_union(plane_dirty_.begin(), plane_dirty_.end(), merged.begin(),
                     merged.end(), std::back_inserter(unioned));
      plane_dirty_ = std::move(unioned);
    }
    if (plane_dirty_.size() > rebuild_threshold()) {
      std::lock_guard planes_lock(planes_mu_);
      build_planes_locked();
      out.planes_rebuilt = true;
      ++stats_.plane_rebuilds;
    } else {
      ++stats_.rebuilds_avoided;
    }
  }

  staged_index_.clear();
  staged_rows_.clear();
  staged_slot_.clear();
  ++epoch_;
  ++stats_.epochs_closed;
  stats_.rows_merged += out.rows_merged;
  out.closed = true;
  out.epoch = epoch_;
  return out;
}

std::size_t TagDatabase::staged_updates() const {
  std::lock_guard lock(delta_mu_);
  return staged_index_.size();
}

std::vector<std::pair<std::uint32_t, bn::BigInt>> TagDatabase::staged_snapshot()
    const {
  std::lock_guard lock(delta_mu_);
  std::vector<std::pair<std::uint32_t, bn::BigInt>> out;
  out.reserve(staged_index_.size());
  for (std::size_t slot = 0; slot < staged_index_.size(); ++slot) {
    out.emplace_back(staged_index_[slot],
                     bn::BigInt::from_limbs(
                         staged_rows_.data() + slot * words_per_tag_,
                         words_per_tag_));
  }
  return out;
}

EpochStats TagDatabase::epoch_stats() const {
  EpochStats out = stats_;
  out.staged_rows = staged_updates();
  out.dirty_rows = plane_dirty_.size();
  return out;
}

bool TagDatabase::bit(std::size_t i, std::size_t pi) const {
  if (i >= n_ || pi >= tag_bits_) {
    throw ParamError("TagDatabase::bit: out of range");
  }
  return (row(i)[pi / 64] >> (pi % 64)) & 1u;
}

bn::BigInt TagDatabase::tag(std::size_t i) const {
  if (i >= n_) throw ParamError("TagDatabase::tag: bad index");
  const std::uint64_t* r = row(i);
  return bn::BigInt::from_limbs(r, words_per_tag_);
}

double TagDatabase::build_planes() const {
  Stopwatch sw;
  std::lock_guard lock(planes_mu_);
  build_planes_locked();
  return sw.seconds();
}

void TagDatabase::invalidate_planes() const {
  planes_built_.store(false, std::memory_order_release);
}

void TagDatabase::build_planes_locked() const {
  planes_.assign(tag_bits_, {});
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* r = row(i);
    for (std::size_t w = 0; w < words_per_tag_; ++w) {
      std::uint64_t word = r[w];
      while (word) {
        const auto b = static_cast<std::size_t>(__builtin_ctzll(word));
        const std::size_t pi = w * 64 + b;
        if (pi < tag_bits_) {
          planes_[pi].push_back(static_cast<std::uint32_t>(i));
        }
        word &= word - 1;
      }
    }
  }
  plane_dirty_.clear();
  planes_built_.store(true, std::memory_order_release);
}

PlaneView TagDatabase::plane(std::size_t pi) const {
  if (pi >= tag_bits_) throw ParamError("TagDatabase::plane: out of range");
  // Double-checked lazy build: concurrent pool workers may all observe the
  // planes as stale; exactly one rebuilds while the rest wait on the mutex
  // and then see planes_built_ set under the same lock.
  if (!planes_built_.load(std::memory_order_acquire)) {
    std::lock_guard lock(planes_mu_);
    if (!planes_built_.load(std::memory_order_relaxed)) {
      build_planes_locked();
    }
  }
  return PlaneView(planes_[pi], plane_dirty_, this, pi);
}

}  // namespace ice::pir
