#include "pir/tag_database.h"

#include "common/error.h"
#include "common/stopwatch.h"

namespace ice::pir {

TagDatabase::TagDatabase(std::size_t tag_bits)
    : tag_bits_(tag_bits), words_per_tag_((tag_bits + 63) / 64) {
  if (tag_bits == 0) throw ParamError("TagDatabase: tag_bits must be >= 1");
}

std::size_t TagDatabase::add(const bn::BigInt& tag) {
  if (tag.is_negative() || tag.bit_length() > tag_bits_) {
    throw ParamError("TagDatabase::add: tag out of range for K bits");
  }
  rows_.resize(rows_.size() + words_per_tag_, 0);
  std::uint64_t* dst = rows_.data() + n_ * words_per_tag_;
  const auto& limbs = tag.limbs();
  for (std::size_t w = 0; w < limbs.size(); ++w) dst[w] = limbs[w];
  planes_valid_.store(false, std::memory_order_release);
  return n_++;
}

void TagDatabase::update(std::size_t index, const bn::BigInt& tag) {
  if (index >= n_) throw ParamError("TagDatabase::update: bad index");
  if (tag.is_negative() || tag.bit_length() > tag_bits_) {
    throw ParamError("TagDatabase::update: tag out of range for K bits");
  }
  std::uint64_t* dst = rows_.data() + index * words_per_tag_;
  for (std::size_t w = 0; w < words_per_tag_; ++w) dst[w] = 0;
  const auto& limbs = tag.limbs();
  for (std::size_t w = 0; w < limbs.size(); ++w) dst[w] = limbs[w];
  planes_valid_.store(false, std::memory_order_release);
}

bool TagDatabase::bit(std::size_t i, std::size_t pi) const {
  if (i >= n_ || pi >= tag_bits_) {
    throw ParamError("TagDatabase::bit: out of range");
  }
  return (row(i)[pi / 64] >> (pi % 64)) & 1u;
}

bn::BigInt TagDatabase::tag(std::size_t i) const {
  if (i >= n_) throw ParamError("TagDatabase::tag: bad index");
  const std::uint64_t* r = row(i);
  return bn::BigInt::from_limbs(r, words_per_tag_);
}

double TagDatabase::build_planes() const {
  Stopwatch sw;
  std::lock_guard lock(planes_mu_);
  build_planes_locked();
  return sw.seconds();
}

void TagDatabase::build_planes_locked() const {
  planes_.assign(tag_bits_, {});
  for (std::size_t i = 0; i < n_; ++i) {
    const std::uint64_t* r = row(i);
    for (std::size_t w = 0; w < words_per_tag_; ++w) {
      std::uint64_t word = r[w];
      while (word) {
        const auto b = static_cast<std::size_t>(__builtin_ctzll(word));
        const std::size_t pi = w * 64 + b;
        if (pi < tag_bits_) {
          planes_[pi].push_back(static_cast<std::uint32_t>(i));
        }
        word &= word - 1;
      }
    }
  }
  planes_valid_.store(true, std::memory_order_release);
}

const std::vector<std::uint32_t>& TagDatabase::plane(std::size_t pi) const {
  if (pi >= tag_bits_) throw ParamError("TagDatabase::plane: out of range");
  // Double-checked lazy build: concurrent pool workers may all observe the
  // planes as stale; exactly one rebuilds while the rest wait on the mutex
  // and then see planes_valid_ set under the same lock.
  if (!planes_valid_.load(std::memory_order_acquire)) {
    std::lock_guard lock(planes_mu_);
    if (!planes_valid_.load(std::memory_order_relaxed)) {
      build_planes_locked();
    }
  }
  return planes_[pi];
}

}  // namespace ice::pir
