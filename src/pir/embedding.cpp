#include "pir/embedding.h"

#include <cmath>

#include "common/error.h"

namespace ice::pir {

std::size_t weight3_capacity(std::size_t gamma) {
  if (gamma < 3) return 0;
  return gamma * (gamma - 1) * (gamma - 2) / 6;
}

std::size_t gamma_for(std::size_t n) {
  if (n == 0) throw ParamError("gamma_for: n must be >= 1");
  auto gamma = static_cast<std::size_t>(
      std::ceil(std::cbrt(6.0 * static_cast<double>(n)))) + 2;
  while (weight3_capacity(gamma) < n) ++gamma;  // defensive; paper bound holds
  return gamma;
}

Embedding::Embedding(std::size_t n) : n_(n), gamma_(gamma_for(n)) {
  triples_.reserve(n);
  // Lexicographic enumeration of 3-subsets {a < b < c} of [0, gamma).
  for (std::uint32_t a = 0; a < gamma_ && triples_.size() < n; ++a) {
    for (std::uint32_t b = a + 1; b < gamma_ && triples_.size() < n; ++b) {
      for (std::uint32_t c = b + 1; c < gamma_ && triples_.size() < n; ++c) {
        triples_.push_back({a, b, c});
      }
    }
  }
  if (triples_.size() < n) {
    throw ParamError("Embedding: capacity bug — gamma too small");
  }
}

Embedding::Triple Embedding::triple(std::size_t i) const {
  if (i >= n_) throw ParamError("Embedding::triple: index out of range");
  return triples_[i];
}

gf::GF4Vector Embedding::point(std::size_t i) const {
  const Triple t = triple(i);
  gf::GF4Vector v(gamma_);
  for (std::uint32_t pos : t) v[pos] = gf::GF4::one();
  return v;
}

}  // namespace ice::pir
