#include "pir/sharded_server.h"

#include <mutex>
#include <utility>

#include "common/parallel.h"

namespace ice::pir {

ShardedTagServer::ShardedTagServer(std::size_t tag_bits,
                                   std::span<const bn::BigInt> tags,
                                   std::size_t max_shard_n,
                                   EvalStrategy strategy,
                                   std::size_t parallelism)
    : tag_bits_(tag_bits),
      strategy_(strategy),
      parallelism_(parallelism),
      map_(tags.size(), max_shard_n) {
  shards_.reserve(map_.num_shards());
  for (const ShardRange& r : map_.ranges()) {
    shards_.push_back(std::make_unique<Shard>(
        tag_bits_, tags.subspan(r.begin, r.size()), strategy_, parallelism_));
  }
}

std::size_t ShardedTagServer::n() const {
  std::shared_lock lock(structure_mu_);
  return map_.n();
}

std::size_t ShardedTagServer::num_shards() const {
  std::shared_lock lock(structure_mu_);
  return shards_.size();
}

std::uint64_t ShardedTagServer::epoch() const {
  std::shared_lock lock(structure_mu_);
  return map_.epoch();
}

ShardMap ShardedTagServer::map_snapshot() const {
  std::shared_lock lock(structure_mu_);
  return map_;
}

std::size_t ShardedTagServer::shard_gamma(std::size_t shard) const {
  std::shared_lock lock(structure_mu_);
  if (shard >= shards_.size()) {
    throw ParamError("ShardedTagServer::shard_gamma: shard out of range");
  }
  return shards_[shard]->embedding.gamma();
}

bn::BigInt ShardedTagServer::tag(std::size_t index) const {
  std::shared_lock structure(structure_mu_);
  const std::size_t s = map_.shard_of(index);
  const Shard& shard = *shards_[s];
  std::shared_lock content(shard.mu);
  return shard.db.tag(index - map_.range(s).begin);
}

void ShardedTagServer::update(std::size_t index, const bn::BigInt& tag) {
  std::shared_lock structure(structure_mu_);
  const std::size_t s = map_.shard_of(index);
  Shard& shard = *shards_[s];
  // Shared content lock: staging is internally synchronized and never
  // touches base rows, so updates ride alongside queries of this shard.
  std::shared_lock content(shard.mu);
  shard.db.update(index - map_.range(s).begin, tag);
}

void ShardedTagServer::update_in_place(std::size_t index,
                                       const bn::BigInt& tag) {
  std::shared_lock structure(structure_mu_);
  const std::size_t s = map_.shard_of(index);
  Shard& shard = *shards_[s];
  std::unique_lock content(shard.mu);
  shard.db.update_in_place(index - map_.range(s).begin, tag);
}

EpochCloseResult ShardedTagServer::close_epoch() {
  std::unique_lock structure(structure_mu_);
  EpochCloseResult out;
  for (auto& shard : shards_) {
    const EpochMergeStats m = shard->db.close_epoch();
    out.rows_merged += m.rows_merged;
    if (m.planes_rebuilt) ++out.plane_rebuilds;
  }
  if (out.rows_merged > 0) {
    // Content changed: plans minted before the close would decode the new
    // tags against pre-close expectations, so the epoch must move. An
    // empty close leaves planners valid.
    map_.bump_epoch();
    out.closed = true;
  }
  out.epoch = map_.epoch();
  return out;
}

std::size_t ShardedTagServer::staged_updates() const {
  std::shared_lock structure(structure_mu_);
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->db.staged_updates();
  return total;
}

EpochStats ShardedTagServer::epoch_stats() const {
  std::shared_lock structure(structure_mu_);
  EpochStats out;
  for (const auto& shard : shards_) {
    const EpochStats s = shard->db.epoch_stats();
    out.epochs_closed += s.epochs_closed;
    out.rows_merged += s.rows_merged;
    out.plane_rebuilds += s.plane_rebuilds;
    out.rebuilds_avoided += s.rebuilds_avoided;
    out.staged_rows += s.staged_rows;
    out.dirty_rows += s.dirty_rows;
  }
  return out;
}

std::vector<bn::BigInt> ShardedTagServer::drain_shard(std::size_t s) const {
  const Shard& shard = *shards_[s];
  std::vector<bn::BigInt> tags;
  tags.reserve(shard.db.size());
  for (std::size_t i = 0; i < shard.db.size(); ++i) {
    tags.push_back(shard.db.tag(i));
  }
  return tags;
}

void ShardedTagServer::rebuild_shard(std::size_t s,
                                     std::span<const bn::BigInt> tags) {
  shards_[s] =
      std::make_unique<Shard>(tag_bits_, tags, strategy_, parallelism_);
}

std::size_t ShardedTagServer::append(const bn::BigInt& tag) {
  std::unique_lock structure(structure_mu_);
  const std::size_t index = map_.n();
  const std::size_t last = shards_.size() - 1;
  // drain_shard reads base rows only: staged updates must be carried over
  // explicitly or a rebuild would silently drop the pending epoch.
  const auto staged = shards_[last]->db.staged_snapshot();
  std::vector<bn::BigInt> tail = drain_shard(last);
  tail.push_back(tag);
  const bool did_split = map_.append_index();
  if (did_split) {
    // The tail became two shards; rebuild both halves.
    const ShardRange lo = map_.range(map_.num_shards() - 2);
    const ShardRange hi = map_.range(map_.num_shards() - 1);
    const std::size_t tail_begin = lo.begin;
    rebuild_shard(last,
                  std::span(tail).subspan(lo.begin - tail_begin, lo.size()));
    shards_.push_back(std::make_unique<Shard>(
        tag_bits_,
        std::span<const bn::BigInt>(tail).subspan(hi.begin - tail_begin,
                                                  hi.size()),
        strategy_, parallelism_));
    for (const auto& [local, t] : staged) {
      if (local < lo.size()) {
        shards_[last]->db.update(local, t);
      } else {
        shards_[last + 1]->db.update(local - lo.size(), t);
      }
    }
  } else {
    // Same shard, one more row: the embedding domain (and possibly gamma)
    // changed, so the whole shard is rebuilt. Appends are the cold path;
    // steady-state updates go through update() and touch nothing here.
    rebuild_shard(last, tail);
    for (const auto& [local, t] : staged) shards_[last]->db.update(local, t);
  }
  return index;
}

std::size_t ShardedTagServer::split(std::size_t s) {
  std::unique_lock structure(structure_mu_);
  if (s >= shards_.size()) {
    throw ParamError("ShardedTagServer::split: shard out of range");
  }
  const auto staged = shards_[s]->db.staged_snapshot();
  std::vector<bn::BigInt> tags = drain_shard(s);
  const std::size_t upper = map_.split(s);  // validates size >= 2
  const ShardRange lo = map_.range(s);
  const ShardRange hi = map_.range(upper);
  rebuild_shard(s, std::span(tags).subspan(0, lo.size()));
  shards_.insert(
      shards_.begin() + static_cast<std::ptrdiff_t>(upper),
      std::make_unique<Shard>(
          tag_bits_,
          std::span<const bn::BigInt>(tags).subspan(lo.size(), hi.size()),
          strategy_, parallelism_));
  // Re-stage pending updates into whichever half owns them now.
  for (const auto& [local, t] : staged) {
    if (local < lo.size()) {
      shards_[s]->db.update(local, t);
    } else {
      shards_[upper]->db.update(local - lo.size(), t);
    }
  }
  return upper;
}

void ShardedTagServer::respond_sharded(const ShardedPirQuery& query,
                                       ShardedPirResponse& out) const {
  std::shared_lock structure(structure_mu_);
  if (query.epoch != map_.epoch()) {
    throw StaleShardMapError(
        "respond_sharded: shard map epoch mismatch (client plan is stale)");
  }
  if (query.shards.empty()) {
    throw ParamError("respond_sharded: empty shard list");
  }
  for (std::size_t i = 0; i < query.shards.size(); ++i) {
    const ShardQuery& sq = query.shards[i];
    if (sq.shard >= shards_.size()) {
      throw ParamError("respond_sharded: unknown shard id");
    }
    if (i > 0 && sq.shard <= query.shards[i - 1].shard) {
      throw ParamError("respond_sharded: shard ids must strictly increase");
    }
    if (sq.query.points.empty()) {
      throw ParamError("respond_sharded: empty sub-query");
    }
  }
  out.shards.resize(query.shards.size());
  // Cross-shard fan-out: each chunk claims a contiguous run of sub-queries
  // (ThreadPool::run_chunks batched-claim broadcast) and writes disjoint
  // pre-sized slots, so the merged response is identical at every thread
  // count. Within a sub-query the per-shard PirServer may fan out again;
  // nested regions run inline on pool workers (common/parallel.h).
  parallel_chunks(
      query.shards.size(), parallelism_,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const ShardQuery& sq = query.shards[i];
          const Shard& shard = *shards_[sq.shard];
          std::shared_lock content(shard.mu);
          out.shards[i].shard = sq.shard;
          shard.server.respond_into(sq.query, out.shards[i].response);
        }
      });
}

const Embedding& ShardedTagServer::single_embedding() const {
  std::shared_lock lock(structure_mu_);
  if (shards_.size() != 1) {
    throw ParamError(
        "single_embedding: monolithic surface requires exactly one shard");
  }
  return shards_[0]->embedding;
}

PirResponse ShardedTagServer::respond_single(const PirQuery& query) const {
  std::shared_lock structure(structure_mu_);
  if (shards_.size() != 1) {
    throw ParamError(
        "respond_single: monolithic surface requires exactly one shard");
  }
  const Shard& shard = *shards_[0];
  std::shared_lock content(shard.mu);
  return shard.server.respond(query);
}

double ShardedTagServer::preprocess() const {
  std::shared_lock structure(structure_mu_);
  double total = 0.0;
  for (const auto& shard : shards_) {
    std::shared_lock content(shard->mu);
    total += shard->db.build_planes();
  }
  return total;
}

}  // namespace ice::pir
